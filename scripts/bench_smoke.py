#!/usr/bin/env python3
"""Bench smoke check (CI): guard the hot-path speedup trajectory.

Re-runs the tracked benchmark (the same harness behind ``repro bench
--batched``) and compares it against the committed baseline
``BENCH_5.json``:

1. the accelerated pass must stay **bit-identical** to the reference
   path on every kernel (cycles, stalls, instruction counts), and the
   config-batched sweep pass must stay bit-identical to serial
   per-config jobs on every (kernel, config) point;
2. the off/on speedup and the serial/batched speedup — same-host
   ratios, so they are stable across CI runners — must not regress by
   more than 10% against the baseline;
3. once the baseline records nonzero span-solver coverage, the run's
   coverage must not fall below 90% of it (the gate arms itself the
   first time a workload change makes the span solver engage).

Absolute wall-clock numbers are *not* compared: they measure the host,
not the code.  Exit code 0 on success; any check failure is a
regression.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.accel.bench import run_bench  # noqa: E402

BASELINE = ROOT / "BENCH_5.json"
#: allowed fractional regression vs the committed baseline (speedup
#: ratios and, once armed, span-solver coverage)
TOLERANCE = 0.10


def _gate_speedup(name: str, run: float, base: float) -> bool:
    floor = base * (1.0 - TOLERANCE)
    if run < floor:
        print(f"FAIL: {name} speedup x{run} fell below x{floor:.2f} "
              f"(baseline x{base} - {TOLERANCE:.0%})")
        return False
    return True


def main() -> int:
    baseline = json.loads(BASELINE.read_text())

    record = run_bench(batched=True)  # same defaults as the baseline
    suite = record["suite"]
    bt = record["batched"]
    print(f"suite: baseline x{baseline['suite']['speedup']}, this run "
          f"x{suite['speedup']} ({suite['kernels']} kernels, "
          f"off {suite['off_seconds']}s, on {suite['on_seconds']}s)")
    print(f"batched: baseline x{baseline['batched']['speedup']}, this run "
          f"x{bt['speedup']} ({bt['kernels']} kernels x "
          f"{len(bt['configs'])} configs, serial {bt['serial_seconds']}s, "
          f"batched {bt['batched_seconds']}s)")

    if not suite["identical"]:
        print("FAIL: accel=on diverged from the reference path")
        return 1
    if not bt["identical"]:
        print("FAIL: batched sweep diverged from serial per-config jobs")
        return 1
    if not _gate_speedup("suite", suite["speedup"],
                         baseline["suite"]["speedup"]):
        return 1
    if not _gate_speedup("batched", bt["speedup"],
                         baseline["batched"]["speedup"]):
        return 1

    # coverage gate: inert while the baseline's span solver never
    # engages (a workload property), armed as soon as it does
    base_cov = baseline["suite"].get("fastpath_coverage", 0.0)
    if base_cov > 0.0:
        cov = suite["fastpath_coverage"]
        if cov < base_cov * (1.0 - TOLERANCE):
            print(f"FAIL: fast-path coverage {cov:.1%} fell below "
                  f"{base_cov * (1.0 - TOLERANCE):.1%} "
                  f"(baseline {base_cov:.1%} - {TOLERANCE:.0%})")
            return 1

    interp = record["interp"]
    if not (interp["decode_hits"] == interp["decode_misses"] > 0):
        print(f"FAIL: decode cache not effective: {interp}")
        return 1

    print("bench smoke OK: bit-identical (suite + batched), "
          "speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
