#!/usr/bin/env python3
"""Bench smoke check (CI): guard the hot-path speedup trajectory.

Re-runs the tracked benchmark (the same harness behind ``repro bench``)
and compares it against the committed baseline ``BENCH_4.json``:

1. the accelerated pass must stay **bit-identical** to the reference
   path on every kernel (cycles, stalls, instruction counts);
2. the off/on speedup — a same-host ratio, so it is stable across CI
   runners — must not regress by more than 10% against the baseline.

Absolute wall-clock numbers are *not* compared: they measure the host,
not the code.  Exit code 0 on success; any check failure is a
regression.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.accel.bench import run_bench  # noqa: E402

BASELINE = ROOT / "BENCH_4.json"
#: allowed fractional speedup regression vs the committed baseline
TOLERANCE = 0.10


def main() -> int:
    baseline = json.loads(BASELINE.read_text())
    base_speedup = baseline["suite"]["speedup"]

    record = run_bench()  # full suite, same defaults as the baseline
    suite = record["suite"]
    print(f"baseline speedup x{base_speedup}, "
          f"this run x{suite['speedup']} "
          f"({suite['kernels']} kernels, off {suite['off_seconds']}s, "
          f"on {suite['on_seconds']}s)")

    if not suite["identical"]:
        print("FAIL: accel=on diverged from the reference path")
        return 1
    floor = base_speedup * (1.0 - TOLERANCE)
    if suite["speedup"] < floor:
        print(f"FAIL: speedup x{suite['speedup']} fell below "
              f"x{floor:.2f} (baseline x{base_speedup} - {TOLERANCE:.0%})")
        return 1

    interp = record["interp"]
    if not (interp["decode_hits"] == interp["decode_misses"] > 0):
        print(f"FAIL: decode cache not effective: {interp}")
        return 1

    print("bench smoke OK: bit-identical, speedup within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
