#!/usr/bin/env python3
"""Execute every fenced ``python`` code block in the documentation.

Walks README.md and docs/*.md, extracts ```python fences, and runs the
blocks of each file cumulatively in one namespace (so later blocks may
use names defined by earlier ones, the way a reader would paste them
into one REPL session). Any exception fails the run with the file and
block line number, which is how CI keeps the docs from rotting.

A block can opt out by being immediately preceded by an HTML comment
marker line::

    <!-- doc-exec: skip -->

Non-``python`` fences (bash, text, ...) are ignored.

Usage: ``python scripts/run_doc_examples.py [FILE.md ...]``
(no arguments: README.md plus every docs/*.md).
"""

from __future__ import annotations

import pathlib
import sys
import traceback

ROOT = pathlib.Path(__file__).resolve().parent.parent
SKIP_MARKER = "<!-- doc-exec: skip -->"

sys.path.insert(0, str(ROOT / "src"))


def extract_blocks(text: str) -> list[tuple[int, str]]:
    """``(start_line, source)`` for every runnable ```python fence."""
    blocks: list[tuple[int, str]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped.startswith("```python"):
            skip = any(prev.strip() == SKIP_MARKER
                       for prev in lines[max(0, i - 2):i] if prev.strip())
            start = i + 1
            body: list[str] = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            if not skip:
                blocks.append((start + 1, "\n".join(body)))
        i += 1
    return blocks


def run_file(path: pathlib.Path) -> int:
    rel = path.relative_to(ROOT) if path.is_relative_to(ROOT) else path
    blocks = extract_blocks(path.read_text())
    if not blocks:
        print(f"-- {rel}: no python blocks")
        return 0
    namespace: dict = {"__name__": "__doc_example__"}
    failures = 0
    for lineno, source in blocks:
        label = f"{rel}:{lineno}"
        try:
            code = compile(source, label, "exec")
            exec(code, namespace)
        except Exception:
            failures += 1
            print(f"FAIL {label}")
            traceback.print_exc()
        else:
            print(f"ok   {label}")
    return failures


def main(argv: list[str]) -> int:
    if argv:
        targets = [pathlib.Path(a).resolve() for a in argv]
    else:
        targets = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    failures = sum(run_file(p) for p in targets)
    if failures:
        print(f"{failures} doc example(s) failed")
        return 1
    print("all doc examples passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
