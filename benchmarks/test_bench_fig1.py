"""Fig 1: MicroBench on the tuned Rocket models vs Banana Pi hardware.

Regenerates the 39-kernel relative-speedup bars for the Banana Pi Sim
Model and the Fast (2x clock) variant, normalised to the Banana Pi
hardware reference, and checks the paper's prose claims.
"""

from repro.analysis import fig1, render_category_summary, render_series
from repro.analysis.report import fig1_checks

SCALE = 0.5


def test_fig1_microbench_vs_banana_pi(benchmark, record):
    result = benchmark.pedantic(fig1, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    assert len(result.labels) == 39  # CRm excluded

    checks = fig1_checks(result)
    text = "\n\n".join([
        render_series(result),
        render_category_summary(result),
        "Paper-claim checks: " + ", ".join(
            f"{k}={'PASS' if v else 'FAIL'}" for k, v in checks.items()),
    ])
    record("fig1", text)

    # the load-bearing shapes from §5.1
    assert checks["memory_below_one"], "MM/MM_st must run slower on FireSim"
    assert checks["cf_data_exec_below_one"], (
        "single-issue Rocket must trail the dual-issue K1 on compute")
    assert checks["fast_model_improves_compute"], (
        "2x clock must close the compute gap")
    # (fast_model_hurts_memory is a known deviation - see EXPERIMENTS.md)
