"""Bench for the hot-path acceleration layer (PR 4).

Times a reduced microbench sweep with ``accel="off"`` then ``"on"`` on the
same configuration, asserts the bit-identity contract held and that the
accelerated pass won, and times the functional interpreter; a reduced
config-batched sweep does the same for the batched engine.  The full
39-kernel record lives in ``BENCH_5.json`` at the repo root (regenerated
by ``repro bench --batched --out BENCH_5.json``); this bench is the
fast, CI-friendly slice of the same harness.
"""

import json

from repro.accel.bench import (run_batched_bench, run_interp_bench,
                               run_suite_bench)
from repro.soc import ROCKET1

#: a cross-section of the suite: ALU loop, FP-heavy, L1-resident memory,
#: L2 streaming, and branchy control flow
KERNELS = ["EI", "EF", "MM", "ML2", "CCh"]


def test_hotpath_suite(benchmark, record):
    rec = benchmark.pedantic(
        lambda: run_suite_bench(ROCKET1, scale=0.5, kernels=KERNELS),
        rounds=1, iterations=1)
    assert rec["identical"], "accel=on diverged from the reference path"
    assert rec["kernels"] == len(KERNELS)
    assert rec["speedup"] > 1.0, (
        f"accelerated pass was not faster: {rec}")
    record("hotpath_suite", json.dumps(rec, indent=2))


def test_hotpath_batched_sweep(benchmark, record):
    rec = benchmark.pedantic(
        lambda: run_batched_bench(kernels=KERNELS),
        rounds=1, iterations=1)
    assert rec["identical"], (
        "batched sweep diverged from serial per-config jobs")
    assert rec["kernels"] == len(KERNELS)
    assert rec["speedup"] > 1.0, (
        f"batched pass was not faster: {rec}")
    record("hotpath_batched_sweep", json.dumps(rec, indent=2))


def test_hotpath_interp(benchmark, record):
    rec = benchmark.pedantic(run_interp_bench, rounds=1, iterations=1)
    assert rec["instructions"] > 0
    # second execution of the same program decodes fully out of the cache
    assert rec["decode_hits"] == rec["decode_misses"] > 0
    record("hotpath_interp", json.dumps(rec, indent=2))
