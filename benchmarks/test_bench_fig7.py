"""Fig 7 (+ §5.4 runtimes): LAMMPS polymer-chain relative speedup on
1/2/4 MPI ranks for both platform pairs."""

from repro.analysis import compare_app_to_paper, fig7, render_series, render_table


def test_fig7_lammps_chain(benchmark, record):
    result = benchmark.pedantic(
        fig7, kwargs={"natoms": 768, "steps": 5}, rounds=1, iterations=1)
    runtimes = result.meta["runtimes"]
    rows = [
        {"Platform": plat, **{f"{nr} ranks (ms)": t * 1e3
                              for nr, t in series.items()}}
        for plat, series in runtimes.items()
    ]
    text = "\n\n".join([
        render_series(result),
        render_table(rows, title="LAMMPS-Chain measured target runtimes"),
        compare_app_to_paper(result),
    ])
    record("fig7", text)

    for series in result.series.values():
        assert all(v < 1.0 for v in series)

    # paper: "good MPI performance scaling can be observed in all
    # hardware configurations"
    for plat, series in runtimes.items():
        assert series[4] < series[1], f"{plat} must scale with ranks"
