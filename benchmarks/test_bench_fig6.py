"""Fig 6 (+ §5.4 runtimes): LAMMPS Lennard-Jones relative speedup on
1/2/4 MPI ranks for both platform pairs."""

from repro.analysis import compare_app_to_paper, fig6, render_series, render_table


def test_fig6_lammps_lj(benchmark, record):
    result = benchmark.pedantic(
        fig6, kwargs={"natoms": 864, "steps": 5}, rounds=1, iterations=1)
    runtimes = result.meta["runtimes"]
    rows = [
        {"Platform": plat, **{f"{nr} ranks (ms)": t * 1e3
                              for nr, t in series.items()}}
        for plat, series in runtimes.items()
    ]
    text = "\n\n".join([
        render_series(result),
        render_table(rows, title="LAMMPS-LJ measured target runtimes"),
        compare_app_to_paper(result),
    ])
    record("fig6", text)

    # paper: large gap — simulations much slower than hardware everywhere
    for series in result.series.values():
        assert all(v < 1.0 for v in series)

    # paper: "we also observe speedup with the number of MPI processes"
    for plat, series in runtimes.items():
        assert series[4] < series[1], f"{plat} must scale with ranks"
