"""Fig 4: NPB on the BOOM configurations vs MILK-V — (a) stock
Small/Medium/Large single-core, (b) the tuned MILK-V model on 1/4 cores."""

import math

from repro.analysis import fig4, render_series


def test_fig4_npb_boom_vs_milkv(benchmark, record):
    result = benchmark.pedantic(fig4, kwargs={"cls": "A"},
                                rounds=1, iterations=1)
    record("fig4", render_series(result))

    # §5.2.2: single-core EP on Large BOOM is close to the MILK-V
    ep_large = result.value("LargeBOOM", "EPx1")
    ep_small = result.value("SmallBOOM", "EPx1")
    assert abs(1 - ep_large) < abs(1 - ep_small), (
        "Large BOOM should be the closest stock config on EP")
    assert ep_large > 0.55, "Large BOOM should approach MILK-V compute"

    # §5.2.2: EP near parity for the tuned model on 1 and 4 cores
    for nr in (1, 4):
        v = result.value("MILKVSim", f"EPx{nr}")
        assert 0.55 < v < 1.6, f"EPx{nr} should be near parity, got {v:.2f}"

    # memory-sensitive benchmarks show the substantial gap (below parity)
    for label in ("ISx1", "MGx1"):
        v = result.value("MILKVSim", label)
        assert not math.isnan(v)
        assert v < 1.0, f"{label} should favour the hardware"
