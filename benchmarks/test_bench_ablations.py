"""Ablation benches for the design knobs the paper discusses.

* L2 cache banks 1 -> 4 (Rocket1 -> Rocket2, §4),
* system bus 64 -> 128 bit (Rocket2 -> Banana Pi Sim Model, §4),
* 2x clock as a dual-issue proxy (§4 / §5.1),
* the MILK-V cache retune of Large BOOM ("reducing CG runtime by
  approximately 27.7 %", §5.2.2),
* DDR3 vs DDR4 DRAM model swap (§6: FireSim would need a custom DDR4
  model — this quantifies how much of the gap that closes),
* simplified SRAM-like LLC vs a realistic-latency LLC (§4's MIP note).
"""

import dataclasses

import pytest

from repro.analysis import relative_speedup, render_table
from repro.mem.dram import DDR4_3200_4CH
from repro.soc import (
    BANANA_PI_SIM,
    FAST_BANANA_PI_SIM,
    LARGE_BOOM,
    MILKV_SIM,
    ROCKET1,
    ROCKET2,
)
from repro.soc.system import System
from repro.workloads.compiler import GCC_9_4
from repro.workloads.microbench import get_kernel, run_kernel
from repro.workloads.npb import run_cg, run_mg


def _cfg_with_hierarchy(cfg, name, **hier_changes):
    return cfg.with_(
        name=name,
        hierarchy=dataclasses.replace(cfg.hierarchy, **hier_changes),
    )


def test_ablation_l2_banks_and_bus(benchmark, record):
    """Rocket1 -> Rocket2 -> BananaPiSim: banks then bus width, on the L2
    bandwidth kernel (where the knobs should matter most)."""

    def run():
        rows = []
        for cfg in (ROCKET1, ROCKET2, BANANA_PI_SIM):
            k = run_kernel(cfg, "ML2_BW_ld", scale=0.6)
            rows.append({
                "Config": cfg.name,
                "L2 banks": cfg.hierarchy.l2.banks,
                "Bus bits": cfg.hierarchy.bus.width_bits,
                "Cycles": k.cycles,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_banks_bus", render_table(
        rows, title="Ablation: L2 banks & bus width (ML2_BW_ld)"))
    # single-core bandwidth gains are modest (paper: no significant
    # Rocket1 vs Rocket2 difference), but the knobs must not hurt
    assert rows[2]["Cycles"] <= rows[0]["Cycles"] * 1.05


def test_ablation_double_clock(benchmark, record):
    """The 2x-clock trick: compute kernels halve in time, DRAM-bound ones
    do not (the imbalance §5.1 describes)."""

    def run():
        out = {}
        for kname in ("EI", "MM"):
            slow = run_kernel(BANANA_PI_SIM, kname, scale=0.4)
            fast = run_kernel(FAST_BANANA_PI_SIM, kname, scale=0.4)
            out[kname] = slow.seconds / fast.seconds
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_double_clock", render_table(
        [{"Kernel": k, "Speedup from 2x clock": v}
         for k, v in speedups.items()],
        title="Ablation: doubling the clock (BananaPiSim -> Fast)"))
    assert speedups["EI"] == pytest.approx(2.0, rel=0.1)   # compute: ~2x
    assert speedups["MM"] < 1.5                            # DRAM-bound: much less


def test_ablation_milkv_hierarchy_cg(benchmark, record):
    """§5.2.2: retuning Large BOOM to the MILK-V hierarchy (64 KiB L1,
    1 MiB L2, 64 MiB LLC) "reduced [CG] runtime by approximately 27.7%"
    — the quoted number compares the stock Large BOOM against the full
    MILK-V Simulation Model, which is the comparison made here."""

    def run():
        r_stock = run_cg(LARGE_BOOM, nranks=1, cls="A")
        r_tuned = run_cg(MILKV_SIM, nranks=1, cls="A")
        assert r_stock.verified and r_tuned.verified
        return r_stock.seconds, r_tuned.seconds

    t_stock, t_tuned = benchmark.pedantic(run, rounds=1, iterations=1)
    improvement = 1 - t_tuned / t_stock
    record("ablation_l1_cg", render_table(
        [{"Hierarchy": "LargeBOOM (32K L1, no LLC)", "CG seconds": t_stock},
         {"Hierarchy": "MILKVSim (64K L1, 1M L2, 64M LLC)",
          "CG seconds": t_tuned},
         {"Hierarchy": "improvement", "CG seconds": improvement}],
        title="Ablation: MILK-V cache retune on CG (paper: ~27.7% faster)"))
    assert improvement > 0.10, (
        f"the MILK-V hierarchy should clearly speed CG up, got {improvement:.1%}")


def test_ablation_ddr4_model(benchmark, record):
    """§6: 'accurately modeling DDR4 would require a custom memory model'.
    Swap our DDR4 model into the MILK-V sim and measure how much of the
    memory-kernel gap it closes."""

    def run():
        ddr4_sim = _cfg_with_hierarchy(
            MILKV_SIM, "MILKVSim-DDR4",
            dram=dataclasses.replace(DDR4_3200_4CH, queue_depth=32),
        )
        out = {}
        for kname in ("MM", "ML2_BW_ld"):
            base = run_kernel(MILKV_SIM, kname, scale=0.4)
            ddr4 = run_kernel(ddr4_sim, kname, scale=0.4)
            out[kname] = base.seconds / ddr4.seconds
        return out

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_ddr4", render_table(
        [{"Kernel": k, "Speedup from DDR4 model": v} for k, v in gains.items()],
        title="Ablation: DDR3 (FASED) -> DDR4 model in MILKVSim"))
    assert gains["MM"] > 1.2, "the DDR4 model must close part of the MM gap"


def test_ablation_llc_realism(benchmark, record):
    """§4: FireSim's LLC 'behaves like an SRAM'. Replace it with the
    realistic-latency LLC and watch MIP lose its advantage."""

    def run():
        realistic = _cfg_with_hierarchy(
            MILKV_SIM, "MILKVSim-realLLC", llc_simplified=False,
        )
        # full 2 MiB footprint: beyond the 1 MiB L2, inside the LLC
        ideal = run_kernel(MILKV_SIM, "MIP", scale=1.0)
        real = run_kernel(realistic, "MIP", scale=1.0)
        return ideal.seconds, real.seconds

    t_ideal, t_real = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_llc", render_table(
        [{"LLC model": "simplified (SRAM-like)", "MIP seconds": t_ideal},
         {"LLC model": "realistic latency", "MIP seconds": t_real}],
        title="Ablation: LLC realism on the MIP anomaly"))
    assert t_real > t_ideal * 1.1, (
        "realistic LLC latency must slow the I-miss stream")


def test_ablation_compiler_versions(benchmark, record):
    """Table 3: FireSim ran GCC 9.4 binaries while the boards ran GCC 13.2.
    Apply the older compiler's codegen overhead to the simulated side and
    measure how much of the gap the toolchain alone explains."""

    def run():
        rows = []
        for kname in ("EI", "DP1d", "MD"):
            t = get_kernel(kname).build(scale=0.4)
            t_old = GCC_9_4.transform(t)
            s_new, s_old = System(BANANA_PI_SIM), System(BANANA_PI_SIM)
            s_new.run(t); s_old.run(t_old)          # warm
            r_new, r_old = s_new.run(t), s_old.run(t_old)
            rows.append({
                "Kernel": kname,
                "gcc-13.2 cycles": r_new.cycles,
                "gcc-9.4 cycles": r_old.cycles,
                "toolchain penalty": r_old.cycles / r_new.cycles - 1,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_compiler", render_table(
        rows, title="Ablation: GCC 9.4 (FireSim) vs GCC 13.2 (boards), "
                    "paper Table 3"))
    for row in rows:
        assert 0 < row["toolchain penalty"] < 0.25, (
            "the toolchain effect should be a small uniform penalty")
