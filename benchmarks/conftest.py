"""Shared benchmark plumbing: every bench renders its table/figure to
stdout and to ``benchmarks/results/<name>.txt`` so the artifacts survive
pytest's output capture."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
