"""Fig 3: NPB relative speedup on the Rocket configurations vs Banana Pi,
single-core (a) and four-core (b)."""

from repro.analysis import fig3, render_series


def test_fig3_npb_rocket_vs_banana_pi(benchmark, record):
    result = benchmark.pedantic(fig3, kwargs={"cls": "A"},
                                rounds=1, iterations=1)
    record("fig3", render_series(result))

    # §5.2.1: Rocket1 vs Rocket2 show no significant difference
    for label in result.labels:
        r1 = result.value("Rocket1", label)
        r2 = result.value("Rocket2", label)
        assert abs(r1 - r2) < 0.25 * max(r1, r2), (
            f"Rocket1 vs Rocket2 should be close on {label}")

    # §5.2.1: the Fast model matches the hardware best on compute (EP)
    for nr in (1, 4):
        ep = f"EPx{nr}"
        fast = result.value("FastBananaPiSim", ep)
        slow = result.value("BananaPiSim", ep)
        assert abs(1 - fast) < abs(1 - slow), (
            "doubling the clock should mimic dual-issue on EP")

    # EP runs slower on the single-issue Rocket models (higher runtime)
    assert result.value("BananaPiSim", "EPx1") < 1.0
