"""Fig 5 (+ §5.3 runtime text): UME relative speedup on 1/2/4 MPI ranks
for both platform pairs, with the paper-vs-measured comparison table."""

from repro.analysis import compare_app_to_paper, fig5, render_series, render_table


def test_fig5_ume(benchmark, record):
    result = benchmark.pedantic(fig5, kwargs={"mesh_n": 16},
                                rounds=1, iterations=1)
    runtimes = result.meta["runtimes"]
    rows = [
        {"Platform": plat, **{f"{nr} ranks (ms)": t * 1e3
                              for nr, t in series.items()}}
        for plat, series in runtimes.items()
    ]
    text = "\n\n".join([
        render_series(result),
        render_table(rows, title="UME measured target runtimes"),
        compare_app_to_paper(result),
    ])
    record("fig5", text)

    # paper: both simulations are slower than their hardware at every rank
    # count (BananaPi rel ~0.7, MILKV rel ~0.1-0.3)
    for series in result.series.values():
        assert all(v < 1.0 for v in series)

    # paper: "we observe runtime scaling with MPI ranks" on all four setups
    for plat, series in runtimes.items():
        assert series[4] < series[1], f"{plat} must scale with ranks"

    # the MILK-V gap is larger than the Banana Pi gap (§5.3)
    assert (result.value("MILKVSim vs MILKV", "1")
            < result.value("BananaPiSim vs BananaPi", "1"))
