"""Benches for the paper's tables: 1 (MicroBench inventory), 2 (NPB apps),
4 (FireSim models), 5 (hardware vs sim specs), and the §3.2.2 host rates."""

import pytest

from repro.analysis import hostrate, render_table, table1, table2, table4, table5
from repro.analysis.data import PAPER_HOST_RATES


def test_table1_inventory(benchmark, record):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    assert len(rows) == 40
    broken = [r for r in rows if "broken" in r["Status"]]
    assert [r["Name"] for r in broken] == ["CRm"]
    record("table1", render_table(rows, title="Table 1: MicroBench kernels"))


def test_table2_inventory(benchmark, record):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    assert [r["Benchmark"] for r in rows] == ["CG", "EP", "IS", "MG"]
    record("table2", render_table(rows, title="Table 2: NPB apps (class A)"))


def test_table4(benchmark, record):
    rows = benchmark.pedantic(table4, rounds=1, iterations=1)
    by_name = {r["Model"]: r for r in rows}
    # paper Table 4 front-end / RoB / LSQ values
    assert by_name["Rocket1"]["Front End"] == "Fetch:2, Decode:1"
    assert by_name["SmallBOOM"]["RoB"] == "RoB:32"
    assert by_name["MediumBOOM"]["RoB"] == "RoB:64"
    assert by_name["LargeBOOM"]["RoB"] == "RoB:96"
    assert by_name["LargeBOOM"]["LSQ"] == "Load:24, Store:24"
    record("table4", render_table(rows, title="Table 4: FireSim models"))


def test_table5(benchmark, record):
    rows = benchmark.pedantic(table5, rounds=1, iterations=1)
    mv = [r for r in rows if "SG2042" in r["Platform"]][0]
    assert mv["HW LLC"] == "64 MiB" and mv["Sim LLC"] == "64 MiB"
    assert "DDR4" in mv["HW memory"] and "DDR3" in mv["Sim memory"]
    record("table5", render_table(rows, title="Table 5: HW vs sim models"))


def test_hostrate(benchmark, record):
    rows = benchmark.pedantic(hostrate, rounds=1, iterations=1)
    by = {r["Design"]: r for r in rows}
    assert by["Rocket1"]["Host MHz"] == PAPER_HOST_RATES["rocket_mhz"]
    assert by["MILKVSim"]["Host MHz"] == PAPER_HOST_RATES["boom_mhz"]
    assert by["Rocket1"]["Slowdown"] == pytest.approx(
        PAPER_HOST_RATES["rocket_slowdown_approx"], rel=0.1)
    assert by["MILKVSim"]["Slowdown"] == pytest.approx(
        PAPER_HOST_RATES["boom_slowdown_approx"], rel=0.05)
    record("hostrate", render_table(
        rows, title="FireSim host rates (paper: ~25x Rocket, ~135x BOOM)"))
