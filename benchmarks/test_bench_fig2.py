"""Fig 2: MicroBench on Small/Medium/Large BOOM and the tuned MILK-V model
vs MILK-V hardware, including the MIP (idealised-LLC) anomaly."""

from repro.analysis import fig2, render_category_summary, render_series
from repro.analysis.report import fig2_checks

SCALE = 0.4


def test_fig2_microbench_vs_milkv(benchmark, record):
    result = benchmark.pedantic(fig2, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    assert len(result.labels) == 39

    checks = fig2_checks(result)
    text = "\n\n".join([
        render_series(result),
        render_category_summary(result),
        "Paper-claim checks: " + ", ".join(
            f"{k}={'PASS' if v else 'FAIL'}" for k, v in checks.items()),
    ])
    record("fig2", text)

    assert checks["memory_below_one"], "memory kernels must favour the SG2042"
    assert checks["large_boom_best_stock"], (
        "Large BOOM should match the MILK-V best among stock configs (§5.1)")
    assert checks["mip_above_one"], (
        "FireSim's SRAM-like LLC must make MIP outperform the hardware")
    assert checks["execution_below_one"], (
        "dependency-chain kernels should favour the wider C920 cores")
