"""Benches for the extension studies beyond the paper's figures.

* multi-node scale-out (§7 future work): NPB across 1..8 simulated nodes;
* the RVV what-if (§3.1.2): the K1's vector unit on data-parallel kernels;
* seed-variation noise floor (Desikan et al. methodology, paper's [8]).
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.error import noise_floor
from repro.smpi import ethernet_network, run_multinode
from repro.soc import BANANA_PI_HW, BANANA_PI_SIM, System, WithVectorUnit, compose
from repro.workloads.microbench import get_kernel
from repro.workloads.microbench.vectorbench import VECTOR_TWINS, vector_twin
from repro.workloads.npb.ep import ep_program, ep_reference


def test_multinode_scaling(benchmark, record):
    """§7: 'simulations up to eight nodes can be performed in the
    available BxE environment' — EP weak-ish scaling across 1..8 nodes."""

    def run():
        ghz = BANANA_PI_SIM.core_ghz
        inter = ethernet_network(ghz, gbps=10.0, latency_us=20.0)
        ref = ep_reference("W")
        rows = []
        for nnodes in (1, 2, 4, 8):
            results = run_multinode(BANANA_PI_SIM, nnodes,
                                    lambda comm: ep_program(comm, "W"),
                                    ranks_per_node=4, inter=inter)
            assert all(np.isclose(r.value[0], ref[0], rtol=1e-8)
                       for r in results)
            cycles = max(r.cycles for r in results)
            comm_share = (sum(r.comm_cycles for r in results)
                          / max(1, sum(r.cycles for r in results)))
            rows.append({
                "Nodes": nnodes,
                "Ranks": 4 * nnodes,
                "EP.W ms": cycles / (ghz * 1e6),
                "Comm share": comm_share,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_multinode", render_table(
        rows, title="Extension: NPB EP across simulated nodes "
                    "(4 ranks/node, 10 GbE)"))
    # correctness at every node count is the hard requirement; timing-wise
    # the communication share must grow as nodes are added
    assert rows[-1]["Comm share"] > rows[0]["Comm share"]


def test_rvv_whatif(benchmark, record):
    """§3.1: vector units were not enabled — quantify what that left out."""

    def run():
        k1_rvv = compose(BANANA_PI_HW, WithVectorUnit(), name="K1+RVV")
        rows = []
        for scalar_name in sorted(VECTOR_TWINS):
            scalar = get_kernel(scalar_name).build(scale=0.5)
            vector = vector_twin(scalar_name).build(scale=0.5)
            s_sys, v_sys = System(k1_rvv), System(k1_rvv)
            s_sys.run(scalar)
            v_sys.run(vector)
            t_s = s_sys.run(scalar).cycles
            t_v = v_sys.run(vector).cycles
            rows.append({"Kernel": scalar_name, "Scalar cycles": t_s,
                         "RVV cycles": t_v, "Speedup": t_s / t_v})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_rvv", render_table(
        rows, title="Extension: K1 256-bit RVV vs scalar"))
    for row in rows:
        assert row["Speedup"] > 1.5, row


def test_noise_floor(benchmark, record):
    """Desikan et al. ([8]): quantify seed-to-seed measurement noise so
    relative-speedup differences can be judged against it."""

    def run():
        kernels = ["Cca", "CCh", "MI", "MD", "EI"]
        floor = noise_floor(BANANA_PI_SIM, kernels, seeds=4, scale=0.3)
        return [
            {"Kernel": k, "Mean cycles": v.mean_cycles, "CV": v.cv,
             "Max/min": v.spread}
            for k, v in floor.items()
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_noise_floor", render_table(
        rows, title="Extension: seed-variation noise floor (BananaPiSim)"))
    # deterministic kernels have zero spread; random-control ones stay small
    by = {r["Kernel"]: r for r in rows}
    assert by["EI"]["Max/min"] == 1.0
    assert by["CCh"]["Max/min"] < 1.2
