"""Fault-injection DSL, appliers, and the farm's chaos behaviours."""

from __future__ import annotations

import json

import pytest

from repro.farm.cache import ResultCache, cache_key
from repro.farm.job import Job
from repro.farm.runfarm import RunFarm
from repro.reliability import (
    Fault,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    apply_worker_fault,
    audit_checkpoint,
    corrupt_cache_entry,
    corrupt_cache_line,
)
from repro.soc.presets import ROCKET1, get_config
from repro.soc.system import System
from repro.workloads.microbench import get_kernel


def canon(results):
    return json.dumps([r.payload for r in results], sort_keys=True)


# -- DSL ---------------------------------------------------------------------


def test_plan_parse_and_describe_roundtrip():
    text = ("kill job=2 attempt=1 after=8\n"
            "hang job=1 sleep=30  # operator note\n"
            "token-drop lane=0 quantum=10; token-dup lane=1 quantum=10\n"
            "corrupt-line tile=0 cache=l1d\n"
            "corrupt-cache entry=0\n")
    plan = FaultPlan.parse(text, seed=42)
    assert len(plan) == 6
    assert plan.seed == 42
    assert FaultPlan.parse(plan.describe(), seed=42) == plan


def test_plan_rejects_unknown_kind_and_bad_params():
    with pytest.raises(FaultPlanError, match="unknown fault kind"):
        FaultPlan.parse("explode job=1")
    with pytest.raises(FaultPlanError, match="key=value"):
        FaultPlan.parse("kill job2")


def test_plan_selectors():
    plan = FaultPlan.parse(
        "kill job=2\n"
        "error job=3 attempt=2\n"
        "token-drop lane=0 quantum=10\n"
        "corrupt-cache entry=1\n"
        "truncate-cache entry=0\n")
    assert plan.worker_fault(2, 1).kind == "kill"
    assert plan.worker_fault(2, 2) is None   # attempt defaults to 1
    assert plan.worker_fault(3, 2).kind == "error"
    assert plan.worker_fault(0, 1) is None
    assert [f.kind for f in plan.token_faults(10)] == ["token-drop"]
    assert plan.token_faults(9) == []
    assert len(plan.cache_faults()) == 2


def test_plan_rng_is_deterministic():
    plan = FaultPlan.parse("corrupt-cache entry=0", seed=7)
    assert plan.rng().random() == plan.rng().random()


def test_fault_param_coercion():
    fault = Fault.parse("kill job=2 sleep=1.5 note=abc")
    assert fault.param("job") == 2
    assert fault.param("sleep") == 1.5
    assert fault.param("note") == "abc"
    assert fault.param("missing", "x") == "x"


# -- appliers ----------------------------------------------------------------


def test_worker_fault_in_process():
    kill = Fault.parse("kill job=0")
    with pytest.raises(FaultInjected):
        apply_worker_fault(kill, in_process=True)
    err = Fault.parse("error job=0")
    with pytest.raises(FaultInjected):
        apply_worker_fault(err, in_process=True)
    with pytest.raises(FaultPlanError):
        apply_worker_fault(Fault.parse("token-drop lane=0"), in_process=True)


def test_token_drop_underflows_immediately():
    system = System(get_config("Rocket1"))
    trace = get_kernel("MM").build(scale=0.05)
    plan = FaultPlan.parse("token-drop lane=0 quantum=2")
    with pytest.raises(RuntimeError, match="underflow"):
        system.run_parallel([trace], quantum=256, chunk=128, fault_plan=plan)


def test_corrupt_line_fault_breaks_the_audit():
    system = System(get_config("Rocket1"))
    trace = get_kernel("MM").build(scale=0.05)
    plan = FaultPlan.parse("corrupt-line tile=0 cache=l1d quantum=2")
    run = system.start_parallel([trace], quantum=256, chunk=128,
                                fault_plan=plan)
    while run.quanta < 3 and run.step():    # injection fires at quantum 2
        pass
    problems = audit_checkpoint(run.checkpoint())
    assert any("duplicate" in p for p in problems), problems


def test_corrupt_line_targets_l2():
    system = System(get_config("Rocket1"))
    system.run(get_kernel("MM").build(scale=0.05))
    assert corrupt_cache_line(system, cache="l2") == system.uncore.l2.name


# -- on-disk cache damage ----------------------------------------------------


@pytest.mark.parametrize("mode", ["garbage", "truncate", "schema"])
def test_cache_corruption_quarantined_as_miss(tmp_path, mode):
    cache = ResultCache(tmp_path)
    job = Job.selftest("ok", value=5)
    key = cache_key(job)
    cache.put(key, job, {"value": 5})
    assert cache.get(key) == {"value": 5}
    corrupt_cache_entry(cache, key, mode=mode)
    assert cache.get(key) is None           # miss, not an exception
    assert cache.corrupt_quarantined == 1
    assert not cache.path(key).exists()     # moved aside, not left in place
    quarantined = list(cache.quarantine_dir.glob("*.json"))
    assert len(quarantined) == 1
    reason = quarantined[0].with_suffix(".reason").read_text()
    assert reason.strip()


def test_cache_corrupt_missing_entry_is_noop(tmp_path):
    cache = ResultCache(tmp_path)
    assert corrupt_cache_entry(cache, "0" * 64) is None


# -- the farm under chaos ----------------------------------------------------


@pytest.fixture(scope="module")
def lockstep_jobs():
    return [Job.kernel(ROCKET1, name, scale=0.05, quantum=512, chunk=256)
            for name in ("EI", "MM")]


@pytest.fixture(scope="module")
def reference(lockstep_jobs):
    results = RunFarm(workers=1).run(lockstep_jobs)
    assert all(r.ok for r in results)
    return canon(results)


def test_farm_resumes_killed_job_bit_identically(tmp_path, lockstep_jobs,
                                                 reference):
    plan = FaultPlan.parse("kill job=1 attempt=1 after=4", seed=3)
    farm = RunFarm(workers=1, fault_plan=plan,
                   checkpoint_dir=tmp_path / "ckpt", checkpoint_every=2,
                   backoff_s=0.0)
    results = farm.run(lockstep_jobs)
    assert all(r.ok for r in results), [r.error for r in results]
    assert canon(results) == reference
    assert results[1].attempts == 2
    assert results[1].resumed
    assert farm.stats.resumed == 1
    assert farm.stats.retries == 1
    # checkpoint consumed on success: nothing left to leak
    assert not list((tmp_path / "ckpt").glob("*.ckpt"))


def test_farm_without_checkpoints_still_converges(lockstep_jobs, reference):
    plan = FaultPlan.parse("kill job=0 attempt=1 after=2")
    farm = RunFarm(workers=1, fault_plan=plan, backoff_s=0.0)
    results = farm.run(lockstep_jobs)
    assert all(r.ok for r in results)
    assert canon(results) == reference
    assert farm.stats.resumed == 0          # no dir -> clean re-run


def test_farm_quarantines_planned_cache_damage(tmp_path, lockstep_jobs,
                                               reference):
    cache = ResultCache(tmp_path / "cache")
    RunFarm(workers=1, cache=cache).run(lockstep_jobs)  # fill
    plan = FaultPlan.parse("corrupt-cache entry=0; truncate-cache entry=1")
    farm = RunFarm(workers=1, cache=cache, fault_plan=plan)
    results = farm.run(lockstep_jobs)
    assert all(r.ok for r in results)
    assert canon(results) == reference
    assert farm.stats.corrupt == 2
    assert farm.stats.cache_hits == 0
    # damaged entries were re-simulated and re-cached: next run all hits
    healed = RunFarm(workers=1, cache=cache)
    assert canon(healed.run(lockstep_jobs)) == reference
    assert healed.stats.cache_hits == 2


def test_farm_graceful_interrupt_writes_manifest(tmp_path):
    jobs = [Job.selftest("ok", value=1),
            Job.selftest("interrupt"),
            Job.selftest("ok", value=3)]
    manifest = tmp_path / "manifest.json"
    farm = RunFarm(workers=1, max_retries=0, manifest_path=manifest)
    results = farm.run(jobs)        # returns partial results, does not raise
    assert farm.interrupted
    assert [r.status for r in results] == ["ok", "interrupted", "interrupted"]
    assert farm.stats.interrupted == 2
    assert farm.stats.ok == 1
    assert farm.stats.failed == 0
    doc = json.loads(manifest.read_text())
    assert doc["interrupted"] is True
    assert [j["status"] for j in doc["jobs"]] == \
        ["ok", "interrupted", "interrupted"]
    assert doc["stats"]["interrupted"] == 2


def test_farm_manifest_written_on_clean_run(tmp_path):
    manifest = tmp_path / "manifest.json"
    farm = RunFarm(workers=1, manifest_path=manifest)
    farm.run([Job.selftest("ok", value=9)])
    doc = json.loads(manifest.read_text())
    assert doc["interrupted"] is False
    assert doc["jobs"][0]["status"] == "ok"


def test_worker_error_fault_is_retried_to_success(lockstep_jobs, reference):
    plan = FaultPlan.parse("error job=0 attempt=1")
    farm = RunFarm(workers=1, fault_plan=plan, backoff_s=0.0)
    results = farm.run(lockstep_jobs)
    assert all(r.ok for r in results)
    assert canon(results) == reference
    assert results[0].attempts == 2
