"""Checkpoint/restore: bit-identity, digests, audits, refusals.

The headline property: a run interrupted at an arbitrary quantum,
checkpointed, serialized to bytes, and restored into a *fresh* System
finishes with results, telemetry, and CPI stacks bit-identical to the
uninterrupted run.  Verified across every named config and three
workload shapes (microbench kernel, NPB-IS-style histogram, UME-style
irregular gather).
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.reliability import (
    CheckpointAuditError,
    CheckpointError,
    SimCheckpoint,
    audit_checkpoint,
    corrupt_cache_line,
)
from repro.soc.presets import ALL_CONFIGS, get_config
from repro.soc.system import System
from repro.telemetry import Snapshot, StatsRegistry, cpi_stack
from repro.workloads.base import PhaseEmitter
from repro.workloads.microbench import get_kernel

QUANTUM, CHUNK = 512, 256


def kernel_trace(seed: int = 0):
    return get_kernel("MM").build(scale=0.05, seed=seed)


def is_style_trace(seed: int = 1):
    """NPB IS's local-histogram phase: streaming keys, random buckets."""
    rng = np.random.default_rng(seed)
    n, buckets = 1500, 256
    keys = rng.integers(0, buckets, size=n)
    loads = (0x10000 + 8 * np.arange(n, dtype=np.uint64)).astype(np.uint64)
    stores = (0x80000 + 8 * keys).astype(np.uint64)
    return PhaseEmitter().emit(loads=loads, stores=stores,
                               int_per_elem=3.0, elems=n)


def ume_style_trace(seed: int = 2):
    """UME's gather-heavy zone loop: indexed loads + chained FP."""
    rng = np.random.default_rng(seed)
    n = 1200
    gather = (0x200000 + 8 * rng.integers(0, 4096, size=n)).astype(np.uint64)
    return PhaseEmitter().emit(loads=gather, fp_per_elem=2.0,
                               fp_chain=True, elems=n)


def run_reference(cfg, trace):
    system = System(cfg)
    registry = StatsRegistry(system)
    base = registry.snapshot()
    result = system.run_parallel([trace], quantum=QUANTUM, chunk=CHUNK)[0]
    delta = registry.delta(base)
    return result, delta, cpi_stack(system, result, delta)


def run_interrupted(cfg, trace, stop_at: int):
    """Interrupt at *stop_at* quanta, restore into a fresh System, finish."""
    system1 = System(cfg)
    baseline = StatsRegistry(system1).snapshot().data
    run1 = system1.start_parallel([trace], quantum=QUANTUM, chunk=CHUNK)
    for _ in range(stop_at):
        if not run1.step():
            break
    blob = run1.checkpoint(extras={"baseline": baseline}).to_bytes()

    ckpt = SimCheckpoint.from_bytes(blob)  # digest verified on load
    system2 = System(cfg)
    registry2 = StatsRegistry(system2)
    run2 = system2.restore(ckpt, [trace])
    run2.run()
    result = run2.results()[0]
    delta = registry2.delta(Snapshot(ckpt.extras["baseline"]))
    return result, delta, cpi_stack(system2, result, delta)


@pytest.mark.parametrize("name", sorted(ALL_CONFIGS))
def test_bit_identity_every_config(name):
    cfg = ALL_CONFIGS[name]
    trace = kernel_trace()
    ref_result, ref_delta, ref_stack = run_reference(cfg, trace)
    stop_at = random.Random(name).randint(1, 6)  # arbitrary but reproducible
    result, delta, stack = run_interrupted(cfg, trace, stop_at)
    assert dataclasses.asdict(result) == dataclasses.asdict(ref_result)
    assert delta.data == ref_delta.data
    assert stack.to_dict() == ref_stack.to_dict()


@pytest.mark.parametrize("cfg_name", ["Rocket1", "SmallBOOM"])
@pytest.mark.parametrize("make_trace",
                         [kernel_trace, is_style_trace, ume_style_trace],
                         ids=["microbench", "npb-is", "ume"])
def test_bit_identity_workload_shapes(cfg_name, make_trace):
    cfg = get_config(cfg_name)
    trace = make_trace()
    ref_result, ref_delta, ref_stack = run_reference(cfg, trace)
    stop_at = random.Random(f"{cfg_name}/{make_trace.__name__}").randint(1, 5)
    result, delta, stack = run_interrupted(cfg, trace, stop_at)
    assert dataclasses.asdict(result) == dataclasses.asdict(ref_result)
    assert delta.data == ref_delta.data
    assert stack.to_dict() == ref_stack.to_dict()


def test_save_load_roundtrip(tmp_path):
    cfg = get_config("Rocket1")
    system = System(cfg)
    run = system.start_parallel([kernel_trace()], quantum=QUANTUM,
                                chunk=CHUNK)
    run.step(3)
    ckpt = run.checkpoint(extras={"note": "roundtrip"})
    path = ckpt.save(tmp_path / "run.ckpt")
    loaded = SimCheckpoint.load(path)
    assert loaded.digest == ckpt.digest
    assert loaded.config_name == "Rocket1"
    assert loaded.quanta == 3
    assert loaded.extras["note"] == "roundtrip"


def test_digest_tamper_detected():
    system = System(get_config("Rocket1"))
    run = system.start_parallel([kernel_trace()], quantum=QUANTUM,
                                chunk=CHUNK)
    run.step(2)
    ckpt = run.checkpoint()
    ckpt.digest = "0" * 64
    with pytest.raises(CheckpointError):
        SimCheckpoint.from_bytes(ckpt.to_bytes())


def test_restore_refuses_wrong_config():
    trace = kernel_trace()
    system = System(get_config("Rocket1"))
    run = system.start_parallel([trace], quantum=QUANTUM, chunk=CHUNK)
    run.step(2)
    ckpt = run.checkpoint()
    other = System(get_config("SmallBOOM"))
    with pytest.raises(CheckpointAuditError, match="fingerprint"):
        other.restore(ckpt, [trace])


def test_restore_refuses_wrong_trace():
    trace = kernel_trace(seed=0)
    system = System(get_config("Rocket1"))
    run = system.start_parallel([trace], quantum=QUANTUM, chunk=CHUNK)
    run.step(2)
    ckpt = run.checkpoint()
    fresh = System(get_config("Rocket1"))
    with pytest.raises(CheckpointError):
        fresh.restore(ckpt, [kernel_trace(seed=99)])


def test_bare_snapshot_restores_warmed_state():
    """A runless checkpoint moves warmed caches/predictors to a new System."""
    cfg = get_config("Rocket1")
    trace = kernel_trace()
    warmed = System(cfg)
    warmed.run(trace)                       # warm caches + predictors
    expected = warmed.run(trace)            # the warmed-run reference

    warmed2 = System(cfg)
    warmed2.run(trace)
    ckpt = warmed2.save_checkpoint()        # bare snapshot: no run attached
    assert ckpt.lanes is None
    fresh = System(cfg)
    assert fresh.restore(ckpt, None) is None
    got = fresh.run(trace)
    assert dataclasses.asdict(got) == dataclasses.asdict(expected)


def test_audit_catches_corrupt_cache_line():
    system = System(get_config("Rocket1"))
    run = system.start_parallel([kernel_trace()], quantum=QUANTUM,
                                chunk=CHUNK)
    run.step(3)
    corrupt_cache_line(system, tile=0, cache="l1d")
    ckpt = run.checkpoint()
    problems = audit_checkpoint(ckpt)
    assert any("duplicate" in p for p in problems), problems
    with pytest.raises(CheckpointAuditError):
        ckpt.audit()


def test_audit_catches_token_leak():
    system = System(get_config("Rocket1"))
    run = system.start_parallel([kernel_trace()], quantum=QUANTUM,
                                chunk=CHUNK)
    run.step(3)
    run.scheduler.channels[0].produce(1)    # forge a token
    ckpt = run.checkpoint()
    problems = audit_checkpoint(ckpt)
    assert any("token" in p for p in problems), problems
