"""Lockstep watchdog: hang detection, attribution, healthy-run silence."""

from __future__ import annotations

import pytest

from repro.reliability import FaultPlan, LockstepWatchdog, SimulationHang
from repro.smpi.runtime import DeadlockError
from repro.soc.presets import get_config
from repro.soc.system import System
from repro.soc.tokens import LockstepScheduler
from repro.telemetry import StatsRegistry
from repro.workloads.microbench import get_kernel


class FreezeLane:
    """Advances normally until *freeze_at* cycles, then livelocks."""

    def __init__(self, freeze_at: int) -> None:
        self._time = 0
        self._freeze_at = freeze_at

    def local_time(self) -> int:
        return self._time

    def advance(self, until: int) -> bool:
        self._time = min(until, self._freeze_at)
        return True  # claims more work forever


def test_frozen_lane_raises_within_k_quanta():
    watchdog = LockstepWatchdog(k_quanta=5)
    scheduler = LockstepScheduler(quantum=10, watchdog=watchdog)
    scheduler.bind([FreezeLane(freeze_at=30)])
    with pytest.raises(SimulationHang) as exc_info:
        while scheduler.step():
            pass
    # froze after 3 quanta; must trip after exactly k more, not later
    assert scheduler.stats.quanta == 3 + 5
    diag = exc_info.value.diagnostics
    assert diag["stalled_quanta"] == 5
    assert diag["quantum"] == 10
    assert [lane["lane"] for lane in diag["lanes"]] == [0]
    assert diag["lanes"][0]["local_time"] == 30
    assert watchdog.stats.hangs == 1
    assert watchdog.stats.worst_stall == 5


def test_one_frozen_lane_among_healthy_is_attributed():
    class EndingLane(FreezeLane):
        def advance(self, until: int) -> bool:
            self._time = until
            return self._time < self._freeze_at  # finishes eventually

    watchdog = LockstepWatchdog(k_quanta=4)
    scheduler = LockstepScheduler(quantum=10, watchdog=watchdog)
    scheduler.bind([EndingLane(freeze_at=50), FreezeLane(freeze_at=20)])
    with pytest.raises(SimulationHang) as exc_info:
        while scheduler.step():
            pass
    diag = exc_info.value.diagnostics
    # the frozen lane pins the least-advanced clock, so the scheduler
    # keeps granting it quanta; attribution: stuck lane = minimum clock
    stuck = min(diag["lanes"], key=lambda lane: lane["local_time"])
    assert stuck["lane"] == 1
    assert stuck["local_time"] == 20
    assert scheduler.next_lane() == 1  # it would be granted again


def test_token_dup_fault_trips_starvation():
    """A token forged onto a finished lane's channel never drains; the
    watchdog flags starvation even though the other lane keeps advancing."""
    cfg = get_config("Rocket2")
    short = get_kernel("EI").build(scale=0.05)   # finishes in a few quanta
    long = get_kernel("MM").build(scale=0.05)
    # lane 0 (EI) retires its trace by quantum ~25; forge the token at 30
    plan = FaultPlan.parse("token-dup lane=0 quantum=30")
    watchdog = LockstepWatchdog(k_quanta=4)
    system = System(cfg)
    with pytest.raises(SimulationHang, match="starvation") as exc_info:
        system.run_parallel([short, long], quantum=64, chunk=64,
                            watchdog=watchdog, fault_plan=plan)
    assert watchdog.stats.hangs == 1
    assert exc_info.value.diagnostics["starved_channels"] == [0]
    scheduler = system.last_scheduler
    assert scheduler.channels[0].occupancy == 1  # the leaked token, in evidence


def test_token_dup_on_live_lane_overflows_at_next_grant():
    """Forging a token on a still-running lane trips channel conservation
    immediately (capacity-1 producer overflow) — loud, not silent."""
    system = System(get_config("Rocket1"))
    trace = get_kernel("MM").build(scale=0.05)
    plan = FaultPlan.parse("token-dup lane=0 quantum=3")
    with pytest.raises(RuntimeError, match="overflow"):
        system.run_parallel([trace], quantum=256, chunk=128, fault_plan=plan)


def test_healthy_run_never_trips_and_exports_telemetry():
    cfg = get_config("Rocket1")
    trace = get_kernel("MM").build(scale=0.05)
    system = System(cfg)
    watchdog = LockstepWatchdog(k_quanta=2)  # tight: any stall would trip
    result = system.run_parallel([trace], quantum=256, chunk=128,
                                 watchdog=watchdog)[0]
    assert result.cycles > 0
    assert watchdog.stats.hangs == 0
    assert watchdog.stats.checks > 0
    snap = StatsRegistry(system).snapshot()
    assert snap["watchdog"]["checks"] == watchdog.stats.checks


def test_unwatched_snapshot_has_no_watchdog_section():
    system = System(get_config("Rocket1"))
    assert "watchdog" not in StatsRegistry(system).snapshot().data


def test_diagnostics_include_system_telemetry():
    system = System(get_config("Rocket1"))
    watchdog = LockstepWatchdog(k_quanta=3, system=system)
    scheduler = LockstepScheduler(quantum=10, watchdog=watchdog)
    scheduler.bind([FreezeLane(freeze_at=0)])
    with pytest.raises(SimulationHang) as exc_info:
        while scheduler.step():
            pass
    assert "telemetry" in exc_info.value.diagnostics


def test_smpi_deadlock_is_a_simulation_hang():
    """DeadlockError subclasses SimulationHang and carries rank forensics."""
    from repro.smpi.runtime import SMPIRuntime

    system = System(get_config("Rocket2"))

    def deadlocked(comm):
        # both ranks receive first: classic head-to-head deadlock
        yield from comm.recv((comm.rank + 1) % comm.size)

    runtime = SMPIRuntime(system, 2)
    with pytest.raises(DeadlockError) as exc_info:
        runtime.run(deadlocked)
    assert isinstance(exc_info.value, SimulationHang)
    diag = exc_info.value.diagnostics
    assert diag["nranks"] == 2
    assert len(diag["ranks"]) == 2
    assert all(r["unmatched_recvs"] for r in diag["ranks"])


def test_watchdog_reset_clears_state():
    watchdog = LockstepWatchdog(k_quanta=2)
    scheduler = LockstepScheduler(quantum=10, watchdog=watchdog)
    scheduler.bind([FreezeLane(freeze_at=0)])
    with pytest.raises(SimulationHang):
        while scheduler.step():
            pass
    watchdog.reset()
    assert watchdog.stats.hangs == 0
    assert watchdog.stats.stalled_quanta == 0
