"""Span pre-segmentation and the closed-form issue solver.

The microbench suite's loop bodies are shorter than :data:`MIN_SPAN`, so
these tests drive the vectorized path with synthetic straight-line
traces — long eligible runs broken by loads, branches, and divides — and
hold it to the same bit-identity contract as the scalar engine."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accel import memo
from repro.accel.fastpath import (
    MIN_SPAN,
    SPAN_ELIGIBLE,
    Span,
    build_spans,
    segment_spans,
    solve_span,
)
from repro.accel.stats import global_stats, reset_global_stats
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.soc.presets import ROCKET1
from repro.soc.system import System


def _straightline(n_alu=80, n_fp=64):
    """ALU run | load | FP run | branch: two eligible spans."""
    b = TraceBuilder()
    for i in range(n_alu):
        b.alu(dst=1 + i % 8, src1=1 + (i + 1) % 8, src2=1 + (i + 2) % 8)
    b.load(dst=9, addr=0x2_0000)
    for i in range(n_fp):
        b.fp(OpClass.FP_FMA, dst=10 + i % 4, src1=10 + (i + 1) % 4,
             src2=9)
    b.branch(taken=False)
    return b.build()


# ------------------------------------------------------------ segmentation

def test_segment_spans_finds_eligible_runs():
    tr = _straightline(n_alu=80, n_fp=64)
    spans = segment_spans(tr.op)
    assert spans == [(0, 80), (81, 145)]


def test_segment_spans_drops_short_runs():
    tr = _straightline(n_alu=MIN_SPAN - 1, n_fp=MIN_SPAN)
    spans = segment_spans(tr.op)
    assert spans == [(MIN_SPAN, 2 * MIN_SPAN)]


def test_segment_spans_empty_trace():
    assert segment_spans(np.array([], dtype=np.uint8)) == []


def test_eligible_ops_have_no_side_channels():
    """The generic rule must exclude anything that touches memory, the
    branch unit, the divider interlock, or the vector unit."""
    for op in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.JUMP,
               OpClass.CALL, OpClass.RET, OpClass.AMO, OpClass.INT_DIV,
               OpClass.VLOAD, OpClass.VSTORE, OpClass.VALU, OpClass.VFMA):
        assert op not in SPAN_ELIGIBLE


# ------------------------------------------------------------ producers

def test_span_links_latest_in_span_producer():
    b = TraceBuilder()
    b.alu(dst=3, src1=1, src2=2)           # 0: writes r3
    b.alu(dst=4, src1=3, src2=1)           # 1: reads r3 <- op 0
    b.alu(dst=3, src1=2, src2=2)           # 2: rewrites r3
    b.alu(dst=5, src1=3, src2=4)           # 3: reads r3 <- op 2, r4 <- op 1
    for _ in range(MIN_SPAN):
        b.alu(dst=6, src1=6, src2=6)
    tr = b.build()
    (span,) = build_spans(tr)
    assert span.prod1[1] == 0
    assert span.prod1[3] == 2
    assert span.prod2[3] == 1
    assert span.prod1[0] == -1  # r1 has no in-span writer


def test_solve_span_matches_width_packing():
    """On a 1-wide core with unit latencies and no dependences, ops issue
    one per cycle — the closed form must reproduce exactly that."""
    b = TraceBuilder()
    for _ in range(MIN_SPAN):
        b.nop()
    tr = b.build()
    (span,) = build_spans(tr)
    lat = np.ones(len(span), dtype=np.float64)
    # entry cycle 10 with 0 slots consumed: op k issues at cycle 10 + k
    sol = solve_span(span, lat, 1, 10.0, 0, 0.0, [0.0] * 64)
    assert sol is not None
    issue, d1, d2 = sol
    assert issue.tolist() == [10.0 + k for k in range(len(span))]
    assert not d1.any() and not d2.any()


# ------------------------------------------------------------ end to end

def test_synthetic_spans_run_bit_identical():
    """A span-heavy trace must retire uops through the vector engine and
    still match the reference scalar path bit for bit."""
    b = TraceBuilder()
    for rep in range(40):
        for i in range(48):
            b.alu(dst=1 + i % 8, src1=1 + (i + 3) % 8, src2=1 + (i + 5) % 8)
        b.load(dst=9, addr=0x2_0000 + 64 * rep)
        for i in range(40):
            b.fp(OpClass.FP_FMA, dst=12 + i % 4, src1=9, src2=12 + (i + 1) % 4)
        b.branch(taken=rep % 7 == 0)
    tr = b.build()

    memo.clear_caches()
    ref = System(ROCKET1.with_(accel="off")).run(tr)
    memo.clear_caches()
    reset_global_stats()
    got = System(ROCKET1.with_(accel="on")).run(tr)

    assert dataclasses.asdict(got) == dataclasses.asdict(ref)
    g = global_stats()
    assert g.fastpath_uops > 0, "span engine never fired on a span-heavy trace"
    assert g.fastpath_uops + g.fallback_uops == ref.instructions
