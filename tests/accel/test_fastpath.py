"""Span pre-segmentation and the closed-form issue solver.

The microbench suite's loop bodies are shorter than :data:`MIN_SPAN`, so
these tests drive the vectorized path with synthetic straight-line
traces — long eligible runs broken by loads, branches, and divides — and
hold it to the same bit-identity contract as the scalar engine."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accel import memo
from repro.accel.fastpath import (
    MIN_SPAN,
    SPAN_ELIGIBLE,
    Span,
    build_spans,
    segment_spans,
    solve_span,
    span_diagnostics,
)
from repro.accel.stats import global_stats, reset_global_stats
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.soc.presets import ROCKET1
from repro.soc.system import System


def _straightline(n_alu=80, n_fp=64):
    """ALU run | load | FP run | branch: two eligible spans."""
    b = TraceBuilder()
    for i in range(n_alu):
        b.alu(dst=1 + i % 8, src1=1 + (i + 1) % 8, src2=1 + (i + 2) % 8)
    b.load(dst=9, addr=0x2_0000)
    for i in range(n_fp):
        b.fp(OpClass.FP_FMA, dst=10 + i % 4, src1=10 + (i + 1) % 4,
             src2=9)
    b.branch(taken=False)
    return b.build()


# ------------------------------------------------------------ segmentation

def test_segment_spans_finds_eligible_runs():
    tr = _straightline(n_alu=80, n_fp=64)
    spans = segment_spans(tr.op)
    assert spans == [(0, 80), (81, 145)]


def test_segment_spans_drops_short_runs():
    tr = _straightline(n_alu=MIN_SPAN - 1, n_fp=MIN_SPAN)
    spans = segment_spans(tr.op)
    assert spans == [(MIN_SPAN, 2 * MIN_SPAN)]


def test_segment_spans_empty_trace():
    assert segment_spans(np.array([], dtype=np.uint8)) == []


def test_eligible_ops_have_no_side_channels():
    """The generic rule must exclude anything that touches memory, the
    branch unit, the divider interlock, or the vector unit."""
    for op in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.JUMP,
               OpClass.CALL, OpClass.RET, OpClass.AMO, OpClass.INT_DIV,
               OpClass.VLOAD, OpClass.VSTORE, OpClass.VALU, OpClass.VFMA):
        assert op not in SPAN_ELIGIBLE


# ------------------------------------------------------------ producers

def test_span_links_latest_in_span_producer():
    b = TraceBuilder()
    b.alu(dst=3, src1=1, src2=2)           # 0: writes r3
    b.alu(dst=4, src1=3, src2=1)           # 1: reads r3 <- op 0
    b.alu(dst=3, src1=2, src2=2)           # 2: rewrites r3
    b.alu(dst=5, src1=3, src2=4)           # 3: reads r3 <- op 2, r4 <- op 1
    for _ in range(MIN_SPAN):
        b.alu(dst=6, src1=6, src2=6)
    tr = b.build()
    (span,) = build_spans(tr)
    assert span.prod1[1] == 0
    assert span.prod1[3] == 2
    assert span.prod2[3] == 1
    assert span.prod1[0] == -1  # r1 has no in-span writer


def test_solve_span_matches_width_packing():
    """On a 1-wide core with unit latencies and no dependences, ops issue
    one per cycle — the closed form must reproduce exactly that."""
    b = TraceBuilder()
    for _ in range(MIN_SPAN):
        b.nop()
    tr = b.build()
    (span,) = build_spans(tr)
    lat = np.ones(len(span), dtype=np.float64)
    # entry cycle 10 with 0 slots consumed: op k issues at cycle 10 + k
    sol = solve_span(span, lat, 1, 10.0, 0, 0.0, [0.0] * 64)
    assert sol is not None
    issue, d1, d2 = sol
    assert issue.tolist() == [10.0 + k for k in range(len(span))]
    assert not d1.any() and not d2.any()


# ------------------------------------------------------------ end to end

def test_synthetic_spans_run_bit_identical():
    """A span-heavy trace must retire uops through the vector engine and
    still match the reference scalar path bit for bit."""
    b = TraceBuilder()
    for rep in range(40):
        for i in range(48):
            b.alu(dst=1 + i % 8, src1=1 + (i + 3) % 8, src2=1 + (i + 5) % 8)
        b.load(dst=9, addr=0x2_0000 + 64 * rep)
        for i in range(40):
            b.fp(OpClass.FP_FMA, dst=12 + i % 4, src1=9, src2=12 + (i + 1) % 4)
        b.branch(taken=rep % 7 == 0)
    tr = b.build()

    memo.clear_caches()
    ref = System(ROCKET1.with_(accel="off")).run(tr)
    memo.clear_caches()
    reset_global_stats()
    got = System(ROCKET1.with_(accel="on")).run(tr)

    assert dataclasses.asdict(got) == dataclasses.asdict(ref)
    g = global_stats()
    assert g.fastpath_uops > 0, "span engine never fired on a span-heavy trace"
    assert g.fastpath_uops + g.fallback_uops == ref.instructions


# ------------------------------------------------------- engagement counters

def _span_heavy_trace():
    b = TraceBuilder()
    for rep in range(40):
        for i in range(48):
            b.alu(dst=1 + i % 8, src1=1 + (i + 3) % 8, src2=1 + (i + 5) % 8)
        b.load(dst=9, addr=0x2_0000 + 64 * rep)
        for i in range(40):
            b.fp(OpClass.FP_FMA, dst=12 + i % 4, src1=9, src2=12 + (i + 1) % 4)
        b.branch(taken=rep % 7 == 0)
    return b.build()


def test_engagement_counters_partition_attempts():
    """spans == completed + aborts, and aborts == no_converge + fe_hazard,
    on both the per-core and the process-global records."""
    tr = _span_heavy_trace()
    memo.clear_caches()
    reset_global_stats()
    system = System(ROCKET1.with_(accel="on"))
    system.run(tr)
    for st in (system.tiles[0].core.accel_stats, global_stats()):
        assert st.spans > 0
        assert st.spans == (st.spans_completed + st.aborts_no_converge
                            + st.aborts_fe_hazard)
    core = system.tiles[0].core.accel_stats
    assert core.span_aborts == core.aborts_no_converge + core.aborts_fe_hazard


def test_engagement_counters_complete_on_warm_frontend():
    """Second pass over the same trace runs with a trained icache: the
    constant-front-end assumption holds and spans complete end to end."""
    tr = _span_heavy_trace()
    memo.clear_caches()
    system = System(ROCKET1.with_(accel="on"))
    system.run(tr)
    before = dataclasses.asdict(system.tiles[0].core.accel_stats)
    system.run(tr)
    after = dataclasses.asdict(system.tiles[0].core.accel_stats)
    delta = {k: after[k] - before[k] for k in after}
    assert delta["spans"] > 0
    assert delta["spans_completed"] == delta["spans"]
    assert delta["aborts_no_converge"] == delta["aborts_fe_hazard"] == 0


# ------------------------------------------------------------- diagnostics

def test_span_diagnostics_agrees_with_segmenter():
    tr = _straightline(n_alu=80, n_fp=64)
    d = span_diagnostics(tr.op)
    spans = segment_spans(tr.op)
    assert d["spans"] == len(spans)
    assert d["span_uops"] == sum(e - s for s, e in spans)
    assert d["uops"] == len(tr.op)
    assert d["eligible_uops"] == 80 + 64
    assert d["min_span"] == MIN_SPAN


def test_span_diagnostics_counts_rejected_runs():
    tr = _straightline(n_alu=MIN_SPAN - 1, n_fp=MIN_SPAN)
    d = span_diagnostics(tr.op)
    assert d["spans"] == 1
    assert d["runs_below_min_span"] == 1
    assert d["uops_below_min_span"] == MIN_SPAN - 1


def test_span_diagnostics_hazard_histogram():
    d = span_diagnostics(np.array([], dtype=np.uint8))
    assert d["hazard_density"] == [0] * 10
    # all-eligible trace: every window lands in the lowest decile
    b = TraceBuilder()
    for i in range(512):
        b.alu(dst=1 + i % 8, src1=1 + (i + 1) % 8, src2=1 + (i + 2) % 8)
    d = span_diagnostics(b.build().op, window=256)
    assert d["hazard_density"] == [2, 0, 0, 0, 0, 0, 0, 0, 0, 0]
    # all-ineligible trace: every window lands in the top decile
    b = TraceBuilder()
    for i in range(512):
        b.load(dst=9, addr=0x2_0000 + 8 * i)
    d = span_diagnostics(b.build().op, window=256)
    assert d["hazard_density"] == [0, 0, 0, 0, 0, 0, 0, 0, 0, 2]
    assert sum(d["hazard_density"]) == 2
