"""The config-batched sweep engine's contract: one compiled trace,
every configuration evaluated over it in one pass, each per-config
result bit-identical to a solo run of that configuration — across the
full named-config set, on microbench kernels and on NPB-EP- and
LAMMPS-shaped traces, through the batched span solver."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accel import memo
from repro.accel.batch import batched_sweep, run_batch
from repro.accel.fastpath import build_spans, solve_span, solve_span_batch
from repro.accel.stats import reset_global_stats
from repro.farm.job import Job, execute_job
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.soc.presets import ALL_CONFIGS, get_config
from repro.soc.system import System
from repro.workloads.base import PhaseEmitter

CONFIG_NAMES = sorted(ALL_CONFIGS)


@pytest.fixture(autouse=True)
def _cold_caches():
    """Every comparison starts cold so the batched pass cannot hit a
    memo entry produced by the serial pass (and vice versa)."""
    memo.clear_caches()
    reset_global_stats()
    yield
    memo.clear_caches()


def _configs():
    return [get_config(n) for n in CONFIG_NAMES]


# ------------------------------------------------------- batched_sweep

def test_batched_sweep_matches_serial_jobs_all_configs():
    """One batched pass over every named config == one Job.kernel per
    config, payload for payload (the `batch` oracle's core claim)."""
    cfgs = _configs()
    serial = {}
    for cfg in cfgs:
        serial[cfg.name] = execute_job(Job.kernel(cfg, "MM", scale=0.05))
    memo.clear_caches()
    points = batched_sweep(cfgs, "MM", scale=0.05)
    assert points == serial


def test_batched_sweep_matches_reference_models():
    """Batched engine points == accel="off" reference runs: the batched
    path inherits the whole layer's bit-identity contract."""
    cfgs = [get_config("Rocket1"), get_config("MediumBOOM")]
    ref = {}
    for cfg in cfgs:
        ref[cfg.name] = execute_job(
            Job.kernel(cfg.with_(accel="off"), "EI", scale=0.05))
    memo.clear_caches()
    points = batched_sweep(cfgs, "EI", scale=0.05)
    assert points == ref


def test_batched_sweep_rejects_duplicate_names():
    cfg = get_config("Rocket1")
    with pytest.raises(ValueError, match="duplicate"):
        batched_sweep([cfg, cfg.with_(accel="on")], "MM", scale=0.05)


def test_batched_sweep_skip_excludes_completed_points():
    """`skip` is the resume path: skipped configs are neither simulated
    nor returned, and the rest still match a full run."""
    cfgs = [get_config("Rocket1"), get_config("Rocket2")]
    full = batched_sweep(cfgs, "EI", scale=0.05)
    memo.clear_caches()
    seen = []
    part = batched_sweep(cfgs, "EI", scale=0.05, skip=("Rocket1",),
                         on_point=lambda name, p: seen.append(name))
    assert set(part) == {"Rocket2"} == set(seen)
    assert part["Rocket2"] == full["Rocket2"]


# ----------------------------------------------------------- run_batch
# NPB EP and the LAMMPS force loop feed the cores PhaseEmitter traces;
# driving those trace shapes through the lockstep batch driver covers
# the workloads the sweep engine meets beyond the microbench suite.

def _ep_trace(n=768):
    """The EP per-rank phase: FP-FMA-dominated, register-resident."""
    em = PhaseEmitter()
    loads = (4096 + (np.arange(n) % 64) * 8).astype(np.uint64)
    return em.emit(loads=loads, fp_per_elem=10.0, int_per_elem=4.0,
                   fp_op=OpClass.FP_FMA, elems=n)


def _lammps_force_trace(npairs=512):
    """The LJ force loop: three loads and a store per pair."""
    em = PhaseEmitter()
    loads = (1 << 20) + np.arange(3 * npairs, dtype=np.uint64) * 8
    stores = (2 << 20) + np.arange(npairs, dtype=np.uint64) * 24
    return em.emit(loads=loads.astype(np.uint64),
                   stores=stores.astype(np.uint64),
                   fp_per_elem=11.0, int_per_elem=2.0,
                   fp_op=OpClass.FP_FMA, elems=npairs)


@pytest.mark.parametrize("make_trace", [_ep_trace, _lammps_force_trace])
def test_run_batch_matches_reference_all_configs(make_trace):
    trace = make_trace()
    batch = run_batch([System(get_config(n)) for n in CONFIG_NAMES], trace)
    for name, got in zip(CONFIG_NAMES, batch):
        ref = System(get_config(name).with_(accel="off")).run(trace)
        assert dataclasses.asdict(got) == dataclasses.asdict(ref), name


def test_run_batch_preserves_input_order_mixed_groups():
    """In-order lockstep members and solo fallbacks (OoO cores) must
    come back in the callers' order, not grouped order."""
    names = ["MediumBOOM", "Rocket1", "LargeBOOM", "Rocket2"]
    trace = _ep_trace(n=256)
    batch = run_batch([System(get_config(n)) for n in names], trace)
    for name, got in zip(names, batch):
        ref = System(get_config(name).with_(accel="off")).run(trace)
        assert dataclasses.asdict(got) == dataclasses.asdict(ref), name


# ---------------------------------------------------- solve_span_batch

def test_solve_span_batch_matches_scalar_rows():
    """The batched fixed point must equal per-config solve_span calls
    value-for-value, across diverging widths/latencies/scoreboards."""
    b = TraceBuilder()
    for i in range(48):
        b.alu(dst=1 + i % 8, src1=1 + (i + 1) % 8, src2=1 + (i + 2) % 8)
    tr = b.build()
    (span,) = build_spans(tr)
    m = len(span)

    rng = np.random.default_rng(7)
    lats = [np.ones(m), np.full(m, 2.0), rng.integers(1, 5, m).astype(float)]
    widths = [1, 2, 4]
    cycles = [10.0, 5.0, 0.0]
    slots = [0, 1, 0]
    fe_readys = [0.0, 7.0, 2.0]
    reg_readys = [rng.integers(0, 20, 64).astype(float).tolist()
                  for _ in range(3)]

    batch = solve_span_batch(span, lats, widths, cycles, slots,
                             fe_readys, reg_readys)
    for c in range(3):
        solo = solve_span(span, lats[c], widths[c], cycles[c], slots[c],
                          fe_readys[c], list(reg_readys[c]))
        assert solo is not None and batch[c] is not None
        for got, want in zip(batch[c], solo):
            assert np.array_equal(got, want), c
