"""Interpreter throughput satellites: the page-backed sparse memory and
the bounded instruction-decode cache."""

from __future__ import annotations

import pytest

from repro.accel.stats import global_stats, reset_global_stats
from repro.isa import interp as interp_mod
from repro.isa.assembler import assemble
from repro.isa.interp import Interpreter, Memory


@pytest.fixture(autouse=True)
def _cold():
    interp_mod._DECODE_CACHE.clear()
    reset_global_stats()
    yield
    interp_mod._DECODE_CACHE.clear()


# ------------------------------------------------------------ memory

def test_memory_reads_zero_when_untouched():
    m = Memory()
    assert m.load(0x1234, 8, signed=False) == 0
    assert len(m) == 0


def test_memory_word_round_trip_and_len():
    m = Memory()
    m.store(0x100, 0xDEAD_BEEF_CAFE_F00D, 8)
    assert m.load(0x100, 8, signed=False) == 0xDEAD_BEEF_CAFE_F00D
    assert len(m) == 8              # distinct bytes ever stored
    m.store(0x104, 0xAA, 1)         # overwrite inside the same word
    assert len(m) == 8
    assert m.load(0x104, 1, signed=False) == 0xAA


def test_memory_sign_extension():
    m = Memory()
    m.store(0x40, 0xFF, 1)
    assert m.load(0x40, 1, signed=True) == -1
    assert m.load(0x40, 1, signed=False) == 0xFF
    m.store(0x48, 0x7F, 1)
    assert m.load(0x48, 1, signed=True) == 0x7F
    m.store(0x50, 0x8000, 2)
    assert m.load(0x50, 2, signed=True) == -0x8000


def test_memory_page_straddle():
    """An 8-byte access crossing the 4 KiB page boundary must behave
    exactly like the byte-granular sparse dict it replaced."""
    addr = (1 << 12) - 4            # 4 bytes in page 0, 4 in page 1
    m = Memory()
    m.store(addr, 0x1122_3344_5566_7788, 8)
    assert m.load(addr, 8, signed=False) == 0x1122_3344_5566_7788
    assert len(m) == 8
    # byte-level view agrees across the boundary
    assert m.load(addr + 3, 1, signed=False) == 0x55
    assert m.load(addr + 4, 1, signed=False) == 0x44
    # partial reads crossing the boundary
    assert m.load(addr + 2, 4, signed=False) == 0x3344_5566


def test_memory_straddling_load_sees_separate_stores():
    m = Memory()
    page = 1 << 12
    m.store(page - 1, 0xAB, 1)
    m.store(page, 0xCD, 1)
    assert m.load(page - 1, 2, signed=False) == 0xCDAB


# ------------------------------------------------------------ decode cache

def _loop_program():
    return assemble("""
        addi x5, x0, 0
        addi x6, x0, 100
    loop:
        addi x5, x5, 1
        blt  x5, x6, loop
        ecall
    """)


def test_decode_cache_counts_and_reuse():
    prog = _loop_program()
    Interpreter(prog, trace=False).run()
    g = global_stats()
    assert g.decode_misses == len(prog)
    assert g.decode_hits == 0       # decode happens once per program word
    # a second interpreter over the same words decodes fully from cache
    Interpreter(prog, trace=False).run()
    assert g.decode_hits == len(prog)
    assert g.decode_misses == len(prog)


def test_decode_cache_is_eviction_free_and_bounded():
    prog = _loop_program()
    Interpreter(prog, trace=False)
    cached = dict(interp_mod._DECODE_CACHE)
    Interpreter(prog, trace=False)
    assert dict(interp_mod._DECODE_CACHE) == cached   # nothing evicted
    assert interp_mod._DECODE_CACHE_BOUND >= 1 << 16

    # at the bound the cache stops growing instead of evicting
    interp_mod._DECODE_CACHE.clear()
    try:
        interp_mod._DECODE_CACHE.update(
            (i, None) for i in range(interp_mod._DECODE_CACHE_BOUND))
        Interpreter(prog, trace=False)
        assert len(interp_mod._DECODE_CACHE) == interp_mod._DECODE_CACHE_BOUND
    finally:
        interp_mod._DECODE_CACHE.clear()


def test_interpreter_results_unchanged_by_cache():
    """Same architectural outcome whether words decode cold or cached."""
    prog = _loop_program()
    a = Interpreter(prog, trace=False)
    a.run()
    b = Interpreter(prog, trace=False)   # fully cache-served decode
    b.run()
    assert a.regs == b.regs
    assert a.retired == b.retired
