"""The acceleration layer's headline contract: ``accel="on"`` is a pure
wall-clock optimization.  Every named configuration must produce results
bit-identical to the reference path — cycles, stall attribution, CPI
stacks, per-rank MPI results — on a microbench kernel, an NPB kernel,
and a LAMMPS step, including through a mid-run checkpoint/restore."""

from __future__ import annotations

import dataclasses

import pytest

from repro.accel import memo
from repro.accel.stats import reset_global_stats
from repro.soc.presets import ALL_CONFIGS, get_config
from repro.soc.system import System
from repro.telemetry import BUCKETS, StatsRegistry, cpi_stack
from repro.workloads.lammps import run_lammps
from repro.workloads.microbench import get_kernel, run_kernel
from repro.workloads.npb import run_ep

CONFIG_NAMES = sorted(ALL_CONFIGS)


@pytest.fixture(autouse=True)
def _cold_caches():
    """Every comparison starts cold so the on-pass cannot hit a memo
    entry produced by another test's off-pass (and vice versa)."""
    memo.clear_caches()
    reset_global_stats()
    yield
    memo.clear_caches()


def _pair(cfg):
    return cfg.with_(accel="off"), cfg.with_(accel="on")


def _canon(x):
    """asdict tree with numpy arrays lowered to lists, so ``==`` is a
    scalar-wise comparison everywhere."""
    if dataclasses.is_dataclass(x) and not isinstance(x, type):
        x = dataclasses.asdict(x)
    if isinstance(x, dict):
        return {k: _canon(v) for k, v in x.items()}
    if isinstance(x, (list, tuple)):
        return [_canon(v) for v in x]
    if hasattr(x, "tolist"):
        return x.tolist()
    return x


@pytest.mark.parametrize("name", CONFIG_NAMES)
def test_microbench_bit_identical(name):
    off, on = _pair(get_config(name))
    a = run_kernel(off, "MM", scale=0.05)
    b = run_kernel(on, "MM", scale=0.05)
    assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)


@pytest.mark.parametrize("name", CONFIG_NAMES)
def test_npb_ep_bit_identical(name):
    off, on = _pair(get_config(name))
    a = run_ep(off, cls="S")
    b = run_ep(on, cls="S")
    assert a.verified and b.verified
    assert a.cycles == b.cycles
    assert _canon(a) == _canon(b)


@pytest.mark.parametrize("name", CONFIG_NAMES)
def test_lammps_step_bit_identical(name):
    off, on = _pair(get_config(name))
    a = run_lammps(off, nranks=1, benchmark="lj", natoms=64, steps=1)
    b = run_lammps(on, nranks=1, benchmark="lj", natoms=64, steps=1)
    assert a.verified and b.verified
    assert a.cycles == b.cycles
    assert _canon(a) == _canon(b)


@pytest.mark.parametrize("name", ["Rocket1", "BananaPi-K1", "MILKVSim"])
def test_cpi_stack_exact_sum_and_identical(name):
    """Accelerated runs must keep the CPI stack's exact-sum invariant and
    reproduce the reference attribution bucket for bucket."""
    stacks = {}
    for mode in ("off", "on"):
        memo.clear_caches()
        system = System(get_config(name).with_(accel=mode))
        trace = get_kernel("MM").build(scale=0.1)
        reg = StatsRegistry(system)
        system.warm(trace)
        base = reg.snapshot()
        result = system.run(trace)
        stack = cpi_stack(system, result, reg.delta(base))
        assert sum(stack.buckets.values()) == result.cycles
        assert set(stack.buckets) == set(BUCKETS)
        stacks[mode] = stack
    assert stacks["on"].to_dict() == stacks["off"].to_dict()


def test_checkpoint_restore_mid_run_with_accel():
    """Interrupt an accelerated lockstep run mid-flight, checkpoint,
    restore into a fresh accelerated system, and finish: the result must
    match the uninterrupted reference (accel=off) run bit for bit."""
    cfg_on = get_config("Rocket1").with_(accel="on")
    cfg_off = get_config("Rocket1").with_(accel="off")
    trace = get_kernel("MM").build(scale=0.05)

    ref = System(cfg_off).run_parallel([trace], quantum=512, chunk=256)[0]

    run = System(cfg_on).start_parallel([trace], quantum=512, chunk=256)
    for _ in range(4):
        if run.done:
            break
        run.step()
    assert not run.done  # the interruption must land mid-run
    ckpt = run.checkpoint()

    resumed = System(cfg_on).restore(ckpt, [trace])
    resumed.run()
    got = resumed.results()[0]
    assert dataclasses.asdict(got) == dataclasses.asdict(ref)
