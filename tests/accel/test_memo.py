"""Trace and result memoization: identity, bounds, isolation, kill-switch."""

from __future__ import annotations

import pytest

from repro.accel import memo
from repro.accel.stats import global_stats, reset_global_stats
from repro.soc.presets import ROCKET1, ROCKET2
from repro.workloads.microbench import get_kernel, run_kernel


@pytest.fixture(autouse=True)
def _cold():
    memo.clear_caches()
    reset_global_stats()
    yield
    memo.clear_caches()


# ------------------------------------------------------------ digests

def test_trace_digest_is_content_identity():
    k = get_kernel("EI")
    a = k.build(scale=0.05, seed=0)
    b = k.build(scale=0.05, seed=0)   # distinct object, same content
    c = k.build(scale=0.1, seed=0)    # different content
    assert a is not b
    assert memo.trace_digest(a) == memo.trace_digest(b)
    assert memo.trace_digest(a) != memo.trace_digest(c)


def test_config_digest_ignores_accel_knob():
    assert (memo.config_digest(ROCKET1.with_(accel="on"))
            == memo.config_digest(ROCKET1.with_(accel="off")))
    assert memo.config_digest(ROCKET1) != memo.config_digest(ROCKET2)


# ------------------------------------------------------------ shared traces

def test_shared_trace_builds_once():
    built = []

    def build():
        built.append(1)
        return get_kernel("EI").build(scale=0.05)

    a = memo.shared_trace("EI", 0.05, 0, build)
    b = memo.shared_trace("EI", 0.05, 0, build)
    assert a is b and len(built) == 1
    g = global_stats()
    assert g.trace_cache_hits == 1 and g.trace_cache_misses == 1
    memo.shared_trace("EI", 0.05, 1, build)  # different seed: new build
    assert len(built) == 2


# ------------------------------------------------------------ result memo

def test_memo_round_trip_and_deep_copy_isolation():
    key = ("k", "c", "Uncore", ())
    memo.memo_put(key, {"cycles": 10, "stalls": {"dep": 3}})
    out = memo.memo_get(key)
    out["stalls"]["dep"] = 999   # a hit must never alias the stored payload
    again = memo.memo_get(key)
    assert again == {"cycles": 10, "stalls": {"dep": 3}}
    g = global_stats()
    assert g.memo_hits == 2


def test_memo_lru_is_bounded():
    for i in range(memo._MEMO_MAX + 16):
        memo.memo_put(("key", i), i)
    assert len(memo._memo) <= memo._MEMO_MAX
    assert memo.memo_get(("key", 0)) is None          # oldest evicted
    assert memo.memo_get(("key", memo._MEMO_MAX + 15)) is not None


def test_env_kill_switch_disables_memo(monkeypatch):
    monkeypatch.setenv("REPRO_ACCEL_MEMO", "0")
    assert not memo.memo_enabled()
    memo.memo_put(("k",), 1)
    assert memo.memo_get(("k",)) is None
    assert len(memo._memo) == 0


# ------------------------------------------------------------ end to end

def test_repeat_runs_hit_the_memo_and_stay_identical():
    import dataclasses

    cfg = ROCKET1.with_(accel="on")
    a = run_kernel(cfg, "EI", scale=0.05)
    hits_before = global_stats().memo_hits
    b = run_kernel(cfg, "EI", scale=0.05)
    assert global_stats().memo_hits == hits_before + 1
    assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)
