"""CLI/doc parity: `repro --help`, README, and docs/api.md must agree.

The parser is the source of truth. The README command table, the
docs/api.md command table, and the `repro.cli` module docstring each
enumerate the same commands; drift in any of them fails here (and
therefore CI) rather than rotting silently.
"""

from __future__ import annotations

import pathlib
import re

import repro.cli as cli

ROOT = pathlib.Path(__file__).resolve().parent.parent


def parser_commands() -> set[str]:
    parser = cli.build_parser()
    for action in parser._subparsers._group_actions:
        return set(action.choices)
    raise AssertionError("parser has no subcommands")


def table_commands(text: str) -> set[str]:
    """Commands from a markdown table whose first column is `cmd`."""
    return set(re.findall(r"^\| `(\w+)` \|", text, flags=re.M))


def test_readme_command_table_matches_parser():
    readme = (ROOT / "README.md").read_text()
    assert table_commands(readme) == parser_commands()


def test_api_doc_command_table_matches_parser():
    api = (ROOT / "docs" / "api.md").read_text()
    # api.md has other tables (building blocks); the command table is the
    # one whose first column entries are bare subcommand names
    listed = table_commands(api)
    assert listed == parser_commands()


def test_cli_docstring_documents_every_command():
    documented = set(re.findall(r"^``(\w+)", cli.__doc__, flags=re.M))
    assert documented == parser_commands()


def test_bench_batched_flag_registered_and_documented():
    """`repro bench --batched` must exist on the parser and be named in
    the module docstring, README, and docs/api.md command tables."""
    parser = cli.build_parser()
    for action in parser._subparsers._group_actions:
        bench = action.choices["bench"]
    flags = {s for a in bench._actions for s in a.option_strings}
    assert "--batched" in flags
    assert "--batched" in cli.__doc__
    assert "--batched" in (ROOT / "README.md").read_text()
    assert "--batched" in (ROOT / "docs" / "api.md").read_text()


def test_every_command_has_help_text():
    parser = cli.build_parser()
    for action in parser._subparsers._group_actions:
        for name, sub in action.choices.items():
            assert sub.description or sub.format_help(), name


def test_doc_pages_exist_and_are_indexed():
    """docs/index.md links every docs page; no dangling references."""
    docs = ROOT / "docs"
    index = (docs / "index.md").read_text()
    pages = {p.name for p in docs.glob("*.md")} - {"index.md"}
    for page in pages:
        assert f"({page})" in index, f"docs/index.md does not link {page}"
    for target in re.findall(r"\]\((\w+\.md)\)", index):
        assert (docs / target).exists(), f"index links missing page {target}"
