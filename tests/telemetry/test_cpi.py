"""CPI-stack attribution invariants on in-order and OoO systems."""

import pytest

from repro.firesim import FireSimManager
from repro.soc import get_config
from repro.soc.system import System
from repro.telemetry import BUCKETS, StatsRegistry, cpi_stack, cpi_stacks
from repro.workloads.microbench import get_kernel


def _run_with_stack(config_name, kernel="MM", scale=0.1):
    system = System(get_config(config_name))
    trace = get_kernel(kernel).build(scale=scale)
    reg = StatsRegistry(system)
    system.warm(trace)
    base = reg.snapshot()
    result = system.run(trace)
    return system, result, cpi_stack(system, result, reg.delta(base))


@pytest.mark.parametrize("config_name", ["Rocket1", "BananaPi-K1"])  # in-order
def test_buckets_sum_inorder(config_name):
    _, result, stack = _run_with_stack(config_name)
    assert stack.cycles == result.cycles
    assert sum(stack.buckets.values()) == result.cycles
    assert set(stack.buckets) == set(BUCKETS)
    assert all(v >= 0 for v in stack.buckets.values())


@pytest.mark.parametrize("config_name", ["LargeBOOM", "MILKV-SG2042"])  # OoO
def test_buckets_sum_ooo(config_name):
    _, result, stack = _run_with_stack(config_name)
    assert sum(stack.buckets.values()) == result.cycles
    assert stack.buckets["base"] > 0


def test_memory_kernel_blames_memory():
    """MM is the paper's worst memory kernel: the stack must say so."""
    _, _, stack = _run_with_stack("BananaPiSim", kernel="MM", scale=0.5)
    mem = sum(stack.buckets[b] for b in ("l1", "l2", "llc", "dram", "tlb"))
    assert mem > stack.cycles // 2
    assert stack.buckets["dram"] > stack.buckets["base"]


def test_compute_kernel_blames_base():
    """EI is issue-limited: base should dominate the attribution."""
    _, _, stack = _run_with_stack("Rocket1", kernel="EI", scale=0.05)
    assert stack.buckets["base"] >= max(
        stack.buckets[b] for b in BUCKETS if b != "base")


def test_parallel_stacks_share_makespan():
    system = System(get_config("Rocket2"))
    trace = get_kernel("EI").build(scale=0.05)
    reg = StatsRegistry(system)
    base = reg.snapshot()
    results = system.run_parallel([trace, trace[:len(trace) // 2]])
    stacks = cpi_stacks(system, results, reg.delta(base))
    makespan = max(r.cycles for r in results)
    for s in stacks:
        assert s.cycles == makespan
        assert sum(s.buckets.values()) == makespan
    # the short lane idles in token_stall
    assert stacks[1].buckets["token_stall"] > stacks[0].buckets["token_stall"]


def test_firesim_manager_attaches_telemetry():
    mgr = FireSimManager(get_config("Rocket1"))
    trace = get_kernel("EI").build(scale=0.05)
    rep = mgr.run_trace(trace)
    assert rep.telemetry is not None
    assert len(rep.cpi) == 1
    assert sum(rep.cpi[0].buckets.values()) == rep.target_cycles


def test_firesim_manager_mpi_telemetry():
    mgr = FireSimManager(get_config("Rocket1"))
    trace = get_kernel("EI").build(scale=0.02)

    def program(comm):
        yield from comm.compute(trace)
        total = yield from comm.allreduce(float(comm.rank))
        return total

    rep = mgr.run_mpi(4, program)
    assert rep.telemetry is not None
    assert len(rep.cpi) == 4
    for stack in rep.cpi:
        assert sum(stack.buckets.values()) == stack.cycles == rep.target_cycles
    assert all(r.value == 6.0 for r in rep.ranks)


def test_render_mentions_dominant_bucket():
    _, _, stack = _run_with_stack("BananaPiSim", kernel="MM", scale=0.5)
    text = stack.render()
    assert "dram" in text and "CPI" in text
