"""StatsRegistry / Snapshot: structure, deltas, serialization."""

import json

import pytest

from repro.soc import get_config
from repro.soc.system import System
from repro.telemetry import SCHEMA_VERSION, Snapshot, StatsRegistry
from repro.workloads.microbench import get_kernel


@pytest.fixture(scope="module")
def trace():
    # MM exercises the full memory hierarchy (EI has no data accesses)
    return get_kernel("MM").build(scale=0.05)


def test_snapshot_structure_inorder(trace):
    system = System(get_config("Rocket1"))
    snap = StatsRegistry(system).snapshot()
    assert snap["schema"] == SCHEMA_VERSION
    assert snap["config"] == "Rocket1"
    assert len(snap["tiles"]) == system.cfg.ncores
    for rec in snap["tiles"]:
        for comp in ("branch", "l1i", "l1d", "itlb", "dtlb"):
            assert isinstance(rec[comp], dict)
        assert rec["prefetch"] is None  # FireSim tiles carry no prefetcher
    assert snap["uncore"]["llc"] is None  # Rocket systems have no LLC
    assert len(snap["uncore"]["dram"]) == 1
    assert snap["scheduler"] is None  # no lockstep run yet


def test_snapshot_structure_silicon(trace):
    system = System(get_config("MILKV-SG2042"))
    snap = StatsRegistry(system).snapshot()
    assert snap["tiles"][0]["prefetch"] is not None
    assert len(snap["uncore"]["llc"]) == 4  # one slice per channel
    assert len(snap["uncore"]["dram"]) == 4


def test_fresh_system_counters_are_zero():
    system = System(get_config("Rocket1"))
    flat = StatsRegistry(system).snapshot().flat()
    for key, value in flat.items():
        if isinstance(value, (int, float)) and not key.startswith(("schema", "ncores")) \
                and not key.endswith(".tile"):
            assert value == 0, key


def test_delta_isolates_measure_window(trace):
    system = System(get_config("Rocket1"))
    reg = StatsRegistry(system)
    system.warm(trace)
    base = reg.snapshot()
    system.run(trace)
    delta = reg.delta(base)
    # the warmed window still executes every instruction...
    assert delta["tiles"][0]["l1d"]["accesses"] > 0
    # ...but cold-miss traffic stays in the warmup window
    full = reg.snapshot()
    assert delta["tiles"][0]["l1d"]["misses"] < full["tiles"][0]["l1d"]["misses"]
    # identity fields survive the subtraction
    assert delta["schema"] == SCHEMA_VERSION
    assert [t["tile"] for t in delta["tiles"]] == [0, 1, 2, 3]


def test_delta_of_identical_snapshots_is_zero(trace):
    system = System(get_config("Rocket1"))
    system.run(trace)
    reg = StatsRegistry(system)
    zero = reg.snapshot() - reg.snapshot()
    for key, value in zero.flat().items():
        if isinstance(value, (int, float)) and not key.startswith(("schema", "ncores")) \
                and ".tile" not in key:
            assert value == 0, key


def test_json_round_trip(trace):
    system = System(get_config("BananaPi-K1"))
    reg = StatsRegistry(system)
    system.run(trace)
    snap = reg.snapshot()
    back = Snapshot.from_json(snap.to_json())
    assert back == snap
    assert back.flat() == snap.flat()
    # delta of a round-tripped baseline equals delta of the original
    system.run(trace)
    assert reg.delta(back) == reg.delta(snap)


def test_csv_export(trace):
    system = System(get_config("Rocket1"))
    system.run(trace)
    csv_text = StatsRegistry(system).snapshot().to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "counter,value"
    keys = {ln.split(",")[0] for ln in lines[1:]}
    assert "tiles.0.l1d.accesses" in keys
    assert "uncore.l2.accesses" in keys


def test_scheduler_stats_appear_after_parallel_run(trace):
    system = System(get_config("Rocket2"))
    reg = StatsRegistry(system)
    system.run_parallel([trace, trace])
    snap = reg.snapshot()
    assert snap["scheduler"] is not None
    assert snap["scheduler"]["quanta"] > 0


def test_system_warm_trains_state(trace):
    cold = System(get_config("Rocket1"))
    warmed = System(get_config("Rocket1"))
    warmed.warm(trace)
    assert cold.run(trace).cycles > warmed.run(trace).cycles
    # zero-argument form stays a harmless no-op (legacy placeholder API)
    reg = StatsRegistry(cold)
    before = reg.snapshot()
    cold.warm()
    assert reg.snapshot() == before
