"""``repro stats`` CLI: every preset, schema stability, export formats."""

import json

import pytest

from repro.cli import main
from repro.soc import ALL_CONFIGS
from repro.telemetry import BUCKETS, SCHEMA_VERSION


def run_cli(capsys, *argv):
    rc = main(list(argv))
    return rc, capsys.readouterr().out


@pytest.mark.parametrize("config_name", sorted(ALL_CONFIGS))
def test_stats_runs_on_every_preset(capsys, config_name):
    rc, out = run_cli(capsys, "stats", "--config", config_name,
                      "--kernel", "MM", "--scale", "0.05", "--json")
    assert rc == 0
    payload = json.loads(out)
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["config"] == config_name
    assert payload["kernel"] == "MM"
    tile = payload["tiles"][0]
    assert set(tile["buckets"]) == set(BUCKETS)
    assert sum(tile["buckets"].values()) == payload["cycles"] == tile["cycles"]
    assert payload["counters"]["tiles"][0]["l1d"]["accesses"] > 0


def test_stats_human_output(capsys):
    rc, out = run_cli(capsys, "stats", "--config", "Rocket1",
                      "--kernel", "EI", "--scale", "0.05")
    assert rc == 0
    assert "EI on Rocket1" in out
    assert "base" in out and "counter delta" in out


def test_stats_csv_output(capsys):
    rc, out = run_cli(capsys, "stats", "--config", "Rocket1",
                      "--kernel", "EI", "--scale", "0.05", "--csv")
    assert rc == 0
    assert out.startswith("counter,value")
    assert "tiles.0.l1d.accesses," in out


def test_stats_writes_out_file(capsys, tmp_path):
    out_file = tmp_path / "stats.json"
    rc, out = run_cli(capsys, "stats", "--config", "Rocket1", "--kernel", "EI",
                      "--scale", "0.05", "--json", "--out", str(out_file))
    assert rc == 0
    assert json.loads(out_file.read_text())["config"] == "Rocket1"


def test_stats_json_and_csv_conflict():
    with pytest.raises(SystemExit):
        main(["stats", "--json", "--csv"])


def test_perf_json(capsys):
    rc, out = run_cli(capsys, "perf", "EI", "--config", "Rocket1",
                      "--scale", "0.05", "--json")
    assert rc == 0
    payload = json.loads(out)
    assert payload["platform"] == "Rocket1"
    assert payload["cycles"] > 0
    assert payload["counters"]["schema"] == SCHEMA_VERSION
