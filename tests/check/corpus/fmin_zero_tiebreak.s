# repro.check shrunk regression
# oracle: golden
# seed: -1
# divergence: f2: interp=0x0000000000000000 golden=0x8000000000000000
li x5, 256
slli x5, x5, 11
slli x5, x5, 11
slli x5, x5, 11
slli x5, x5, 11
slli x5, x5, 11
fmv.d.x f1, x5
fmv.d.x f0, x0
fmin.d f2, f0, f1
ecall
