# repro.check shrunk regression
# oracle: golden
# seed: 11
# divergence: crash:OverflowError fcvt of infinity
li x31, 255
slli x31, x31, 11
ori x31, x31, 1792
slli x31, x31, 11
slli x31, x31, 11
slli x31, x31, 11
slli x31, x31, 11
fmv.d.x f3, x31
fcvt.w.d x7, f3
