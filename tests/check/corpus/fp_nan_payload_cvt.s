# repro.check shrunk regression
# oracle: golden
# seed: 5
# divergence: freg NaN payload propagated uncanonicalized
li x31, 255
slli x31, x31, 11
ori x31, x31, 1933
slli x31, x31, 11
slli x31, x31, 11
slli x31, x31, 11
slli x31, x31, 11
fmv.d.x f6, x31
fadd.s f31, f4, f6
