# repro.check shrunk regression
# oracle: golden
# seed: 0
# divergence: mem diff survives (page-wrap store)
sw x7, -1(x20)
