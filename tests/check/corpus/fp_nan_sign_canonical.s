# repro.check shrunk regression
# oracle: golden
# seed: 2
# divergence: freg NaN with sign bit set (host default NaN)
fdiv.s f14, f8, f0
