# repro.check shrunk regression
# oracle: golden
# seed: 3
# divergence: freg 0x7ff8000000000001: quieted sNaN payload kept
li x31, 255
slli x31, x31, 11
ori x31, x31, 1792
slli x31, x31, 11
slli x31, x31, 11
slli x31, x31, 11
slli x31, x31, 11
ori x31, x31, 1
fmv.d.x f1, x31
fmul.d f24, f0, f1
