# repro.check shrunk regression
# oracle: golden
# seed: -1
# divergence: f2: interp=0x7ff8deadbeef0001 golden=0x7ff8000000000000
li x5, 255
slli x5, x5, 11
ori x5, x5, 1933
slli x5, x5, 11
ori x5, x5, 1878
slli x5, x5, 11
ori x5, x5, 1787
slli x5, x5, 11
ori x5, x5, 1504
slli x5, x5, 11
ori x5, x5, 1
fmv.d.x f0, x5
fmv.d.x f1, x5
fmax.d f2, f0, f1
ecall
