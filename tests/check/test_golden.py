"""Golden-machine semantics: the reference the fuzzer diffs against."""

from __future__ import annotations

import pytest

from repro.check import CANONICAL_NAN_BITS, GoldenMachine
from repro.check.golden import _narrow_f64, _widen_f32
from repro.isa.assembler import assemble

M64 = (1 << 64) - 1
MIN64 = 1 << 63  # -2^63 as raw bits


def run_golden(source: str, base: int = 0x1_0000) -> GoldenMachine:
    gm = GoldenMachine(assemble(source, base=base), base=base)
    gm.run(max_instructions=10_000)
    return gm


def test_div_corner_semantics():
    gm = run_golden(
        "li x5, 7\n"
        "li x6, 0\n"
        "div x10, x5, x6\n"     # /0 -> -1
        "rem x11, x5, x6\n"     # %0 -> dividend
        "li x7, 1\n"
        "slli x7, x7, 63\n"     # INT64_MIN
        "li x8, -1\n"
        "div x12, x7, x8\n"     # overflow -> INT64_MIN
        "rem x13, x7, x8\n"     # overflow -> 0
        "divu x14, x5, x6\n"    # unsigned /0 -> all ones
        "ecall\n")
    assert gm.xregs[10] == M64
    assert gm.xregs[11] == 7
    assert gm.xregs[12] == MIN64
    assert gm.xregs[13] == 0
    assert gm.xregs[14] == M64


def test_word_shift_semantics():
    gm = run_golden(
        "li x5, 1\n"
        "slli x5, x5, 33\n"      # bit 33: w-ops must ignore it
        "ori x5, x5, 12\n"
        "li x6, 35\n"            # shift amounts use the low 5 bits: 3
        "srlw x10, x5, x6\n"
        "sraw x11, x5, x6\n"
        "sllw x12, x5, x6\n"
        "ecall\n")
    assert gm.xregs[10] == 12 >> 3
    assert gm.xregs[11] == 12 >> 3
    assert gm.xregs[12] == (12 << 3) & 0xFFFFFFFF


def test_fmin_fmax_zero_and_nan():
    gm = run_golden(
        "li x5, 1\n"
        "slli x5, x5, 63\n"       # -0.0 bits
        "fmv.d.x f1, x5\n"
        "fmv.d.x f0, x0\n"        # +0.0
        "fmin.d f2, f0, f1\n"     # tie: -0.0 wins
        "fmax.d f3, f1, f0\n"     # tie: +0.0 wins
        "li x6, 2047\n"
        "slli x6, x6, 52\n"
        "ori x6, x6, 99\n"        # a NaN with a payload
        "fmv.d.x f4, x6\n"
        "fmin.d f5, f4, f1\n"     # one NaN: the other operand
        "fmax.d f6, f4, f4\n"     # both NaN: canonical
        "ecall\n")
    assert gm.fregs[2] == 1 << 63
    assert gm.fregs[3] == 0
    assert gm.fregs[5] == 1 << 63
    assert gm.fregs[6] == CANONICAL_NAN_BITS


def test_arithmetic_nan_is_canonical():
    gm = run_golden(
        "fmv.d.x f0, x0\n"
        "fdiv.d f1, f0, f0\n"     # 0/0
        "li x5, -1\n"
        "fcvt.d.l f2, x5\n"
        "fsqrt.d f3, f2\n"        # sqrt(-1)
        "ecall\n")
    assert gm.fregs[1] == CANONICAL_NAN_BITS
    assert gm.fregs[3] == CANONICAL_NAN_BITS


def test_fcvt_inf_and_nan_clamp():
    gm = run_golden(
        "li x5, 2047\n"
        "slli x5, x5, 52\n"       # +inf bits
        "fmv.d.x f0, x5\n"
        "fcvt.l.d x10, f0\n"      # +inf -> INT64_MAX
        "fcvt.w.d x11, f0\n"      # +inf -> INT32_MAX (sext)
        "li x6, 1\n"
        "slli x6, x6, 63\n"
        "or x6, x6, x5\n"         # -inf bits
        "fmv.d.x f1, x6\n"
        "fcvt.l.d x12, f1\n"      # -inf -> INT64_MIN
        "ori x7, x5, 1\n"
        "fmv.d.x f2, x7\n"
        "fcvt.l.d x13, f2\n"      # NaN -> INT64_MAX
        "ecall\n")
    assert gm.xregs[10] == (1 << 63) - 1
    assert gm.xregs[11] == 0x7FFFFFFF
    assert gm.xregs[12] == MIN64
    assert gm.xregs[13] == (1 << 63) - 1


def test_memory_wraps_at_address_space_end():
    gm = run_golden(
        "li x5, -4\n"             # 0xFFFF_FFFF_FFFF_FFFC
        "li x6, 0x12345678\n"
        "slli x6, x6, 32\n"
        "ori x6, x6, 2047\n"      # 0x12345678_000007FF
        "sd x6, 0(x5)\n"          # top 4 bytes wrap to addresses 0..3
        "ld x10, 0(x5)\n"
        "li x7, 0\n"
        "lb x11, 1(x7)\n"         # wrapped byte 5 of the stored value
        "ecall\n")
    assert gm.xregs[10] == 0x12345678_000007FF
    assert gm.xregs[11] == 0x56


@pytest.mark.parametrize("bits64,expect32", [
    # quiet NaN payload truncates into the f32 fraction, quiet bit kept
    (0x7FF8_DEAD_BEEF_0001, 0x7FC0_0000 | ((0xDEADBEEF0001 >> 29) & 0x3FFFFF)),
    (0xFFF8_0000_0000_0000, 0xFFC0_0000),  # sign survives the narrow
    (0x7FF0_0000_0000_0000, 0x7F80_0000),  # inf stays inf
])
def test_narrow_f64_nan_payloads(bits64, expect32):
    assert _narrow_f64(bits64) == expect32


def test_widen_f32_quiets_snan():
    # f32 sNaN 0x7F800001 -> quiet bit set, payload shifted into f64
    out = _widen_f32(0x7F80_0001)
    assert out >> 51 == 0xFFF  # exponent all ones + quiet bit
    assert out & ((1 << 51) - 1) == 1 << 29
