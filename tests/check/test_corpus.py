"""Replay every shrunk fuzzer finding in ``tests/check/corpus/``.

Each ``.s`` file is a minimal program the fuzzer reduced from a real
divergence (its header records the oracle, generating seed, and the
original diff).  Replaying them keeps every bug the fuzzer ever found
fixed forever; a regression here means one of those bugs is back.
"""

from __future__ import annotations

from repro.check import CORPUS_DIR, load_corpus, replay_entries


def test_corpus_exists_and_is_labeled():
    entries = load_corpus()
    assert len(entries) >= 5, f"corpus missing from {CORPUS_DIR}"
    names = {n for n, _, _ in entries}
    # the satellite-bug families must all be pinned
    for expected in ("mem_straddle_wrap", "fp_nan_sign_canonical",
                     "fcvt_inf_overflow", "fmin_zero_tiebreak",
                     "fmax_both_nan_canonical"):
        assert expected in names


def test_corpus_replays_clean():
    failures = replay_entries(load_corpus())
    assert failures == [], "\n".join(failures)
