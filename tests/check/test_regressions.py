"""Pinned regressions for the divergences the differential fuzzer found.

Every test here failed on the tree before the corresponding fix; the
shrunk fuzzer programs live in ``tests/check/corpus/`` and are replayed
by ``test_corpus.py``.  These are the direct, single-subsystem forms.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.accel import memo
from repro.farm import Job, ResultCache, RunFarm, cache_key
from repro.isa.assembler import assemble
from repro.isa.interp import Interpreter, Memory
from repro.reliability import LockstepWatchdog, SimulationHang
from repro.soc.presets import get_config
from repro.soc.system import System

M64 = (1 << 64) - 1
CANON = 0x7FF8_0000_0000_0000


def fbits(interp: Interpreter, i: int) -> int:
    return struct.unpack("<Q", struct.pack("<d", interp.fregs[i]))[0]


def run_asm(source: str) -> Interpreter:
    it = Interpreter(assemble(source, base=0x1_0000), trace=False)
    it.run(10_000)
    return it


# -- interpreter FP semantics (satellite 1) -----------------------------------

def test_fmin_zero_tiebreak():
    it = run_asm(
        "li x5, 1\nslli x5, x5, 63\n"
        "fmv.d.x f1, x5\n"         # -0.0
        "fmv.d.x f0, x0\n"         # +0.0
        "fmin.d f2, f0, f1\n"
        "fmax.d f3, f1, f0\n"
        "ecall\n")
    assert fbits(it, 2) == 1 << 63   # fmin(+0,-0) is -0.0
    assert fbits(it, 3) == 0         # fmax(-0,+0) is +0.0


def test_fminmax_nan_handling():
    it = run_asm(
        "li x5, 2047\nslli x5, x5, 52\nori x5, x5, 1\n"  # sNaN bits
        "fmv.d.x f0, x5\n"
        "li x6, 3\nfcvt.d.l f1, x6\n"
        "fmin.d f2, f0, f1\n"      # one NaN: the other operand
        "fmax.d f3, f0, f0\n"      # both NaN: canonical quiet NaN
        "ecall\n")
    assert it.fregs[2] == 3.0
    assert fbits(it, 3) == CANON


def test_arithmetic_nan_results_are_canonical():
    it = run_asm(
        "fmv.d.x f0, x0\n"
        "fdiv.d f1, f0, f0\n"      # 0/0: x86 would give the negative NaN
        "fdiv.s f2, f0, f0\n"
        "li x5, 2047\nslli x5, x5, 52\nori x5, x5, 99\n"
        "fmv.d.x f3, x5\n"         # NaN with payload
        "fadd.d f4, f3, f3\n"      # payload must not propagate
        "fcvt.s.d f5, f3\n"
        "ecall\n")
    for i in (1, 2, 4, 5):
        assert fbits(it, i) == CANON, f"f{i}: {fbits(it, i):#x}"


def test_fcvt_of_infinity_clamps_instead_of_crashing():
    it = run_asm(
        "li x5, 2047\nslli x5, x5, 52\n"   # +inf
        "fmv.d.x f0, x5\n"
        "li x6, 1\nslli x6, x6, 63\nor x6, x6, x5\n"  # -inf
        "fmv.d.x f1, x6\n"
        "fcvt.l.d x10, f0\n"
        "fcvt.w.d x11, f0\n"
        "fcvt.l.d x12, f1\n"
        "fcvt.w.d x13, f1\n"
        "ecall\n")
    assert it.regs[10] == (1 << 63) - 1
    assert it.regs[11] == 0x7FFFFFFF
    assert it.regs[12] == 1 << 63
    assert it.regs[13] == 0xFFFFFFFF80000000  # INT32_MIN sign-extended


def test_memory_straddle_wraps_address_space():
    mem = Memory()
    mem.store(M64 - 3, 0x1122334455667788, 8)  # 4 bytes wrap past 2^64
    assert mem.load(M64 - 3, 8, signed=False) == 0x1122334455667788
    assert mem.load(0, 4, signed=False) == 0x11223344
    # the wrapped bytes must land at addresses 0..3, not at page 2^52
    assert all(p < (1 << 52) for p in mem._pages)


# -- watchdog re-arm across checkpoint/restore (satellite 3) ------------------

def _lockstep_trace():
    from repro.check import generate_program, run_program
    return run_program(generate_program(1)).trace_so_far


def test_watchdog_rearmed_after_restore():
    trace = _lockstep_trace()
    cfg = get_config("Rocket2")
    wd = LockstepWatchdog(k_quanta=1)  # a single stale read would hang
    donor = System(cfg).start_parallel([trace], quantum=64, chunk=32,
                                       watchdog=wd)
    assert donor.step(2)
    ckpt = donor.checkpoint()
    donor.run()  # pre-crash run advances far past the checkpoint
    resumed = System(cfg).restore(ckpt, [trace], watchdog=wd)
    results = resumed.run()  # pre-fix: spurious SimulationHang
    ref = System(cfg).run_parallel([trace], quantum=64, chunk=32)
    assert [r.cycles for r in results] == [r.cycles for r in ref]
    assert wd.stats.hangs == 0


def test_watchdog_treats_backward_clock_as_rearm():
    class FakeLane:
        def __init__(self, t):
            self._t = t

        def local_time(self):
            return self._t

    class FakeChannel:
        occupancy = 0

        def state(self):
            return {}

    class FakeStats:
        quanta = 0

    class FakeScheduler:
        quantum = 64
        stats = FakeStats()

        def __init__(self, lanes):
            self.lanes = lanes
            self.live_lanes = list(range(len(lanes)))
            self._live = set(self.live_lanes)
            self.channels = [FakeChannel() for _ in lanes]

    wd = LockstepWatchdog(k_quanta=1)
    lane = FakeLane(100)
    sched = FakeScheduler([lane])
    wd.observe(sched)
    lane._t = 40  # rewound under the watchdog (restore)
    wd.observe(sched)  # must re-arm, not raise
    assert wd.stats.stalled_quanta == 0
    lane._t = 40  # now a genuine stall
    with pytest.raises(SimulationHang):
        wd.observe(sched)


# -- memo identity hardening (satellite 2) ------------------------------------

def test_trace_digest_survives_id_reuse():
    trace = _lockstep_trace()
    good = memo.trace_digest(trace)
    # simulate CPython recycling the address of a dead pinned trace
    memo._digests[id(trace)] = (object(), "stale-digest")
    assert memo.trace_digest(trace) == good
    assert memo._digests[id(trace)][0] is trace


def test_trace_arrays_survive_id_reuse():
    trace = _lockstep_trace()
    view = memo.trace_arrays(trace)
    memo._arrays[id(trace)] = (object(), {"bogus": True})
    fresh = memo.trace_arrays(trace)
    assert "bogus" not in fresh
    assert fresh["op"] == view["op"]


# -- farm result-cache durability (satellite 4) -------------------------------

def _job():
    return Job.kernel(get_config("Rocket1"), "MM", scale=0.05)


def test_cache_put_cleans_tmp_on_write_failure(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    job = _job()
    key = cache_key(job)

    import os as _os
    real_replace = _os.replace

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr("os.replace", boom)
    with pytest.raises(OSError):
        cache.put(key, job, {"cycles": 1})
    monkeypatch.setattr("os.replace", real_replace)
    assert list(tmp_path.rglob("*.tmp")) == []  # no orphan left behind
    assert cache.get(key) is None               # and no entry either


def test_cache_sweep_collects_killed_writer_orphans(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    key = cache_key(job)
    cache.put(key, job, {"cycles": 7})
    # a writer killed between mkstemp and replace leaves this behind
    orphan = tmp_path / key[:2] / "tmpdead.tmp"
    orphan.write_text("{\"truncat")
    assert cache.sweep_orphans(max_age_s=1e9) == 0  # too young: kept
    assert orphan.exists()
    assert cache.sweep_orphans(max_age_s=0) == 1
    assert not orphan.exists()
    assert cache.get(key) == {"cycles": 7}  # real entry untouched


def test_torn_cache_entry_quarantined_and_rerun(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    key = cache_key(job)
    cache.put(key, job, {"cycles": 7})
    # crash-inject: overwrite the entry with a torn (truncated) write
    path = cache.path(key)
    blob = path.read_bytes()
    path.write_bytes(blob[:len(blob) // 2])
    assert cache.get(key) is None
    assert cache.corrupt_quarantined == 1
    assert (cache.quarantine_dir / path.name).exists()
    # the farm treats it as a miss and recomputes, then repopulates
    farm = RunFarm(workers=1, cache=cache)
    [res] = farm.run([job])
    assert res.ok and not res.from_cache
    entry = json.loads(cache.path(key).read_text())
    assert entry["key"] == key
