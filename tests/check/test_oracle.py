"""Differential oracle tiers: clean on the fixed tree, sharp on planted bugs."""

from __future__ import annotations

import pytest

from repro.check import (
    ALL_TIERS,
    CheckProgram,
    diff_accel,
    diff_batch,
    diff_checkpoint,
    diff_farm,
    diff_golden,
    generate_program,
    lint_invariants,
    run_check,
    run_program,
)


@pytest.mark.parametrize("seed", [0, 3, 7])
def test_golden_tier_clean(seed):
    assert diff_golden(generate_program(seed)) == []


def test_golden_flags_a_planted_divergence():
    # x0 writes are discarded; a program relying on that is fine, but a
    # doctored golden diff must fire when registers genuinely differ.
    prog = CheckProgram(seed=0, source="li x10, 1\necall\n")
    interp = run_program(prog)
    interp.regs[10] = 2  # corrupt the architectural state post-hoc
    diffs = diff_golden(prog, interp=interp)
    assert any(d.startswith("x10:") for d in diffs)


def test_lint_invariants_clean():
    trace = run_program(generate_program(1)).trace_so_far
    assert lint_invariants(trace) == []


def test_accel_tier_clean_one_config():
    trace = run_program(generate_program(2)).trace_so_far
    assert diff_accel(trace, config_names=("Rocket1",)) == []


def test_checkpoint_tier_clean():
    trace = run_program(generate_program(4)).trace_so_far
    assert diff_checkpoint(trace, seed=4) == []


def test_batch_tier_clean_pinned_pair():
    """Pinned replay of the batch oracle: a fixed kernel over a fixed
    in-order/out-of-order config pair, serial vs batched vs a
    killed-and-resumed batched run."""
    assert diff_batch("EI", config_names=("Rocket1", "MediumBOOM"),
                      seed=0, scale=0.1) == []


def test_farm_tier_clean(tmp_path):
    progs = [generate_program(s) for s in (0, 1)]
    assert diff_farm(progs) == []


def test_run_check_smoke():
    report = run_check(seeds=2, tiers=("golden", "lint"), shrink=False)
    assert report.ok
    assert report.tier_programs == {"golden": 2, "lint": 2}
    assert "PASS" in report.summary()


def test_run_check_rejects_unknown_tier():
    with pytest.raises(ValueError, match="unknown tier"):
        run_check(seeds=1, tiers=("golden", "nope"))


def test_all_tiers_is_exhaustive():
    assert set(ALL_TIERS) == {"golden", "lint", "accel", "batch",
                              "checkpoint", "instrument", "farm", "chaos"}
