"""Shrinker: minimality, signature preservation, corpus round-trip."""

from __future__ import annotations

from repro.check import (
    CheckProgram,
    load_corpus,
    replay_entries,
    shrink_program,
    write_corpus_entry,
)
from repro.check.shrink import category_predicate, diff_category


def _mk(source: str) -> CheckProgram:
    return CheckProgram(seed=0, source=source)


def test_shrink_drops_irrelevant_lines():
    prog = _mk(
        "li x5, 1\n" "li x6, 2\n" "li x7, 3\n" "add x8, x5, x6\n"
        "li x28, 77\n"  # the only line the predicate cares about
        "mul x9, x7, x7\n" "ecall\n")

    def fails(p: CheckProgram) -> bool:
        return "li x28, 77" in p.source

    small = shrink_program(prog, fails)
    assert small.source.strip().splitlines() == ["li x28, 77"]


def test_shrink_keeps_failing_pair():
    prog = _mk(
        "li x5, 9\n" "li x6, 1\n" "li x7, 2\n"
        "div x10, x5, x6\n" "ecall\n")

    def fails(p: CheckProgram) -> bool:  # needs both the li and the div
        return "li x5, 9" in p.source and "div x10" in p.source

    small = shrink_program(prog, fails)
    lines = small.source.strip().splitlines()
    assert "li x5, 9" in lines and "div x10, x5, x6" in lines
    assert len(lines) == 2


def test_diff_category_families():
    assert diff_category("x10: interp=0x1 golden=0x2") == "xreg"
    assert diff_category("f3: interp=0x1 golden=0x2") == "freg"
    assert diff_category("mem[0x10]: interp=01 golden=02") == "mem"
    assert diff_category("crash:OverflowError cannot convert") \
        == "crash:OverflowError"
    assert diff_category("retired: interp=3 golden=4") == "retired"


def test_category_predicate_pins_the_family():
    def diff_fn(p: CheckProgram) -> list[str]:
        out = []
        if "li x5" in p.source:
            out.append("x5: interp=0x0 golden=0x1")
        if "fmv.d.x f1" in p.source:
            out.append("f1: interp=0x0 golden=0x1")
        return out

    prog = _mk("li x5, 1\nfmv.d.x f1, x0\necall\n")
    freg_only = category_predicate(diff_fn, "freg")
    small = shrink_program(prog, freg_only)
    # the xreg-diffing line is gone, the freg one survives
    assert "fmv.d.x f1" in small.source
    assert "li x5" not in small.source


def test_category_predicate_counts_matching_crash():
    def boom(p: CheckProgram) -> list[str]:
        raise OverflowError("planted")

    assert category_predicate(boom, "crash:OverflowError")(_mk("ecall\n"))
    assert not category_predicate(boom, "crash:ValueError")(_mk("ecall\n"))
    assert not category_predicate(boom, "xreg")(_mk("ecall\n"))


def test_corpus_round_trip(tmp_path):
    prog = _mk("li x10, 42\necall\n")
    path = write_corpus_entry(prog, "golden", "x10: fake", name="unit_rt",
                              corpus_dir=tmp_path)
    assert path.name == "unit_rt.s"
    entries = load_corpus(tmp_path)
    assert [(n, o) for n, o, _ in entries] == [("unit_rt", "golden")]
    # the reloaded program assembles to the same words
    assert entries[0][2].words == prog.words
    # the fixed tree has no divergence for it, so replay is clean
    assert replay_entries(entries) == []


def test_replay_reports_divergent_entry(tmp_path):
    # an entry whose recorded oracle can't reproduce cleanly: plant a
    # program that diverges by construction via a bogus oracle crash
    bad = _mk("jal x0, loop\nloop:\njal x0, loop\n")  # never halts
    write_corpus_entry(bad, "golden", "hang", name="unit_hang",
                       corpus_dir=tmp_path)
    failures = replay_entries(load_corpus(tmp_path))
    assert failures and failures[0].startswith("unit_hang:")
