"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_list_configs(capsys):
    rc, out = run_cli(capsys, "list", "configs")
    assert rc == 0
    assert "Rocket1" in out and "MILKV-SG2042" in out
    assert "silicon" in out and "firesim" in out


def test_list_kernels(capsys):
    rc, out = run_cli(capsys, "list", "kernels")
    assert rc == 0
    assert "MM" in out and "Cca" in out
    assert "CRm" not in out  # broken kernel hidden


def test_list_experiments(capsys):
    rc, out = run_cli(capsys, "list", "experiments")
    assert rc == 0
    for eid in ("fig1", "fig7", "table4", "hostrate"):
        assert eid in out


def test_kernel_command(capsys):
    rc, out = run_cli(capsys, "kernel", "EI", "--config", "Rocket1",
                      "--scale", "0.05")
    assert rc == 0
    assert "EI on Rocket1" in out
    assert "CPI" in out


def test_compare_command(capsys):
    rc, out = run_cli(capsys, "compare", "EI", "--scale", "0.05")
    assert rc == 0
    assert "relative speedup" in out


def test_npb_command(capsys):
    rc, out = run_cli(capsys, "npb", "EP", "--cls", "S", "--ranks", "2")
    assert rc == 0
    assert "EP.S" in out and "OK" in out


def test_experiment_table4(capsys, tmp_path):
    out_file = tmp_path / "t4.txt"
    rc, out = run_cli(capsys, "experiment", "table4", "--out", str(out_file))
    assert rc == 0
    assert "Rocket1" in out
    assert "Rocket1" in out_file.read_text()


def test_unknown_config_errors():
    with pytest.raises(KeyError):
        main(["kernel", "EI", "--config", "Rocket9"])


def test_parser_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])
