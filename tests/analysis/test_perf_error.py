"""Tests for the perf-stat reports and the measurement-error analysis."""

import pytest

from repro.analysis.error import noise_floor, seed_variation, significant
from repro.analysis.perf import perf_stat
from repro.soc import MILKV_SIM, ROCKET1
from repro.workloads.microbench import get_kernel

SCALE = 0.08


def test_perf_stat_counters_consistent():
    t = get_kernel("ML2").build(scale=SCALE)
    rep = perf_stat(ROCKET1, t)
    assert rep.instructions == len(t)
    assert rep.cycles > 0
    assert 0 < rep.ipc <= 2
    assert rep.l1d_loads_misses > 0          # L2-resident chase misses L1
    assert rep.l2_accesses >= rep.l1d_loads_misses
    assert rep.branches > 0


def test_perf_stat_warm_vs_cold():
    t = get_kernel("MD").build(scale=SCALE)
    warm = perf_stat(ROCKET1, t, warmup=True)
    cold = perf_stat(ROCKET1, t, warmup=False)
    assert warm.cycles < cold.cycles
    assert warm.dram_reads <= cold.dram_reads


def test_perf_stat_llc_counters_on_milkv():
    t = get_kernel("MIP").build(scale=0.7)
    rep = perf_stat(MILKV_SIM, t)
    assert rep.llc_accesses > 0  # I-misses stream through the LLC


def test_perf_render():
    t = get_kernel("EI").build(scale=SCALE)
    out = perf_stat(ROCKET1, t).render()
    assert "Performance counter stats" in out
    assert "IPC" in out
    assert "DRAM row-hit rate" in out


def test_seed_variation_bounds():
    v = seed_variation(ROCKET1, "CCh", seeds=3, scale=SCALE)
    assert len(v.cycles) == 3
    assert v.spread >= 1.0
    assert 0 <= v.cv < 0.5  # random branches vary a little, not wildly


def test_deterministic_kernel_has_no_variation():
    v = seed_variation(ROCKET1, "EI", seeds=3, scale=SCALE)
    assert v.spread == 1.0  # EI's trace is seed-independent
    assert v.cv == 0.0


def test_noise_floor_and_significance():
    floor = noise_floor(ROCKET1, ["EI", "CCh"], seeds=3, scale=SCALE)
    assert set(floor) == {"EI", "CCh"}
    # a 2x difference is significant against any small noise floor
    assert significant(1.0, 2.0, floor["EI"])
    # a difference inside the seed spread is not
    eps = floor["CCh"].spread ** 0.5
    assert not significant(1.0, min(eps, 1.0001), floor["CCh"])


def test_validation():
    with pytest.raises(ValueError):
        seed_variation(ROCKET1, "EI", seeds=1)
    v = seed_variation(ROCKET1, "EI", seeds=2, scale=SCALE)
    with pytest.raises(ValueError):
        significant(-1.0, 1.0, v)
