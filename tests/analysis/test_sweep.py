"""Parameter-sweep utility tests."""

import pytest

from repro.analysis.sweep import sweep_configs, sweep_knob
from repro.soc import BANANA_PI_HW, BANANA_PI_SIM, ROCKET1
from repro.soc.fragments import WithClock, WithL1Size


def test_sweep_configs_ordering():
    r = sweep_configs([ROCKET1, BANANA_PI_SIM, BANANA_PI_HW], "EI", scale=0.05)
    assert [p.label for p in r.points] == ["Rocket1", "BananaPiSim",
                                           "BananaPi-K1"]
    # dual-issue silicon is fastest on independent integer work
    assert r.best().label == "BananaPi-K1"


def test_sweep_knob_clock():
    r = sweep_knob(ROCKET1, WithClock, [1.6, 3.2], "EI", scale=0.05)
    assert len(r.points) == 2
    # 2x clock halves a compute kernel's time
    assert r.speedup() == pytest.approx(2.0, rel=0.05)


def test_sweep_knob_l1_size_monotone_on_cache_kernel():
    r = sweep_knob(ROCKET1, WithL1Size, [16, 64], "MI", scale=0.1)
    # bigger L1 never hurts the cache-resident random-access kernel
    assert r.points[1].seconds <= r.points[0].seconds * 1.02


def test_sweep_rows_and_degenerate_speedup():
    r = sweep_configs([ROCKET1], "EI", scale=0.05)
    assert r.speedup() == 1.0
    rows = r.rows()
    assert rows[0]["Setting"] == "Rocket1"
    assert rows[0]["Cycles"] > 0


def test_sweep_knob_rejects_colliding_labels():
    """Two values with the same str() would silently collapse into one
    sweep row (and one batched payload key) — refuse instead."""
    class GHz(float):
        def __str__(self):
            return "nominal"

    with pytest.raises(ValueError, match="duplicate labels"):
        sweep_knob(ROCKET1, WithClock, [GHz(1.6), GHz(3.2)], "EI",
                   scale=0.05)


def test_sweep_configs_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        sweep_configs([ROCKET1, ROCKET1.with_(accel="on")], "EI",
                      scale=0.05)


def test_sweep_configs_batched_bit_identical():
    """batched=True routes through the config-batched engine; points
    must match the per-config jobs value for value, in input order."""
    from repro.accel import memo

    cfgs = [ROCKET1, BANANA_PI_SIM, BANANA_PI_HW]
    serial = sweep_configs(cfgs, "EI", scale=0.05)
    memo.clear_caches()
    batched = sweep_configs(cfgs, "EI", scale=0.05, batched=True)
    assert batched.points == serial.points


def test_sweep_knob_batched_bit_identical():
    from repro.accel import memo

    serial = sweep_knob(ROCKET1, WithClock, [1.6, 3.2], "EI", scale=0.05)
    memo.clear_caches()
    batched = sweep_knob(ROCKET1, WithClock, [1.6, 3.2], "EI",
                         scale=0.05, batched=True)
    assert batched.points == serial.points
