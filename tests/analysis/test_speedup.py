"""Tests for the relative-speedup metric, series containers, and reports."""

import math

import pytest

from repro.analysis.speedup import SeriesResult, relative_speedup, summarize_by_category
from repro.analysis.report import render_series, render_table
from repro.analysis.data import (
    PAPER_LAMMPS_LJ_RUNTIMES,
    PAPER_UME_RUNTIMES,
    paper_relative_speedup,
)


def test_relative_speedup_definition():
    # paper: 1.2 means the simulation runs 20% faster than hardware
    assert relative_speedup(1.2, 1.0) == pytest.approx(1.2)
    assert relative_speedup(0.5, 1.0) == pytest.approx(0.5)
    assert relative_speedup(1.0, 1.0) == 1.0


def test_relative_speedup_validates():
    with pytest.raises(ValueError):
        relative_speedup(0.0, 1.0)
    with pytest.raises(ValueError):
        relative_speedup(1.0, -1.0)


def make_series():
    return SeriesResult(
        experiment="t",
        labels=["a", "b", "c", "d"],
        series={"s1": [0.5, 1.0, 2.0, 1.0], "s2": [1.0, 1.0, 1.0, 4.0]},
        meta={"categories": {"x": ["a", "b"], "y": ["c", "d"]}},
    )


def test_series_value_and_geomean():
    r = make_series()
    assert r.value("s1", "c") == 2.0
    assert r.geomean("s1") == pytest.approx(1.0)
    assert r.geomean("s2") == pytest.approx(4 ** 0.25)


def test_series_subset():
    r = make_series().subset(["a", "c"])
    assert r.labels == ["a", "c"]
    assert r.series["s1"] == [0.5, 2.0]


def test_series_validation():
    with pytest.raises(ValueError):
        SeriesResult("t", ["a"], {"s": [1.0, 2.0]})


def test_summarize_by_category():
    r = make_series()
    s = summarize_by_category(r, r.meta["categories"])
    assert s["s1"]["x"] == pytest.approx(math.sqrt(0.5))
    assert s["s1"]["y"] == pytest.approx(math.sqrt(2.0))
    assert s["s2"]["y"] == pytest.approx(2.0)


def test_paper_reference_tables():
    # paper §5.3: UME on Banana Pi ~0.73 s vs sim 1.0 s at 1 rank
    rel = paper_relative_speedup(PAPER_UME_RUNTIMES, "BananaPi", "BananaPiSim", 1)
    assert rel == pytest.approx(0.73)
    # LAMMPS LJ 1-rank: 13 s hw vs 55 s sim
    rel = paper_relative_speedup(PAPER_LAMMPS_LJ_RUNTIMES, "BananaPi",
                                 "BananaPiSim", 1)
    assert rel == pytest.approx(13 / 55)
    # every paper pair is below 1.0 (simulation always slower)
    for table in (PAPER_UME_RUNTIMES, PAPER_LAMMPS_LJ_RUNTIMES):
        for hw, sim in (("BananaPi", "BananaPiSim"), ("MILKV", "MILKVSim")):
            for nr in (1, 2, 4):
                assert paper_relative_speedup(table, hw, sim, nr) < 1.0


def test_render_table():
    out = render_table([{"A": 1.23456, "B": "x"}, {"A": 2.0, "B": "yy"}],
                       title="T")
    assert "T" in out
    assert "1.235" in out
    assert "yy" in out


def test_render_table_empty():
    assert "(empty)" in render_table([], title="E")


def test_render_series_marks_target():
    out = render_series(make_series())
    assert "relative speedup" in out
    assert "|" in out
    assert "s1" in out and "s2" in out


def test_render_series_handles_nan():
    r = SeriesResult("t", ["a"], {"s": [float("nan")]})
    out = render_series(r)
    assert "-" in out
