"""Unit tests for the fig-1/fig-2 paper-claim checkers (synthetic data)."""

from repro.analysis.report import fig1_checks, fig2_checks
from repro.analysis.speedup import SeriesResult

CATS = {
    "Control Flow": ["Cca", "CCh"],
    "Data": ["DP1d"],
    "Execution": ["EI"],
    "Cache": ["MD", "MC", "MIP"],
    "Memory": ["MM"],
}
LABELS = ["Cca", "CCh", "DP1d", "EI", "MD", "MC", "MIP", "MM"]


def series(vals):
    return dict(zip(LABELS, vals))


def make_fig1(slow, fast):
    return SeriesResult(
        experiment="fig1",
        labels=LABELS,
        series={
            "BananaPiSim": [slow[l] for l in LABELS],
            "FastBananaPiSim": [fast[l] for l in LABELS],
        },
        meta={"categories": CATS},
    )


def test_fig1_checks_all_pass_on_paper_shape():
    slow = series([0.7, 0.7, 0.8, 0.65, 0.7, 0.6, 0.7, 0.36])
    fast = series([1.3, 1.2, 1.5, 1.3, 1.3, 1.2, 1.4, 0.25])
    checks = fig1_checks(make_fig1(slow, fast))
    assert all(checks.values()), checks


def test_fig1_checks_catch_wrong_shapes():
    # simulation faster than hardware on compute: must fail
    slow = series([1.2, 1.2, 1.2, 1.2, 0.7, 0.6, 0.7, 0.4])
    fast = series([1.3, 1.2, 1.5, 1.3, 1.3, 1.2, 1.4, 0.3])
    checks = fig1_checks(make_fig1(slow, fast))
    assert not checks["cf_data_exec_below_one"]


def make_fig2(milkv, stock_scale=0.8):
    base = {
        "SmallBOOM": [v * stock_scale * 0.6 for v in milkv.values()],
        "MediumBOOM": [v * stock_scale * 0.8 for v in milkv.values()],
        "LargeBOOM": [v * stock_scale for v in milkv.values()],
        "MILKVSim": list(milkv.values()),
    }
    return SeriesResult(experiment="fig2", labels=LABELS, series=base,
                        meta={"categories": CATS})


def test_fig2_checks_pass_on_paper_shape():
    milkv = series([0.9, 0.8, 0.95, 0.85, 0.9, 0.6, 1.4, 0.35])
    checks = fig2_checks(make_fig2(milkv))
    assert checks["memory_below_one"]
    assert checks["mip_above_one"]
    assert checks["conflict_below_one"]
    assert checks["execution_below_one"]
    assert checks["large_boom_best_stock"]


def test_fig2_checks_catch_missing_mip_anomaly():
    milkv = series([0.9, 0.8, 0.95, 0.85, 0.9, 0.6, 0.7, 0.35])
    checks = fig2_checks(make_fig2(milkv))
    assert not checks["mip_above_one"]
