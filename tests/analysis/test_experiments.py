"""Experiment-registry tests: every table/figure function produces sane
output at reduced scale, and key paper shapes hold."""

import math

import pytest

from repro.analysis import (
    EXPERIMENTS,
    compare_app_to_paper,
    fig1,
    fig2,
    fig5,
    hostrate,
    render_category_summary,
    table1,
    table2,
    table4,
    table5,
)
from repro.analysis.tuning import QUICK_KERNELS, fidelity, tune_for_banana_pi
from repro.soc import BANANA_PI_HW, BANANA_PI_SIM, ROCKET1


def test_registry_covers_all_artifacts():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table4", "table5",
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "hostrate",
    }


def test_table1_inventory():
    rows = table1()
    assert len(rows) == 40
    crm = [r for r in rows if r["Name"] == "CRm"][0]
    assert "broken" in crm["Status"]
    cats = {r["Category"] for r in rows}
    assert cats == {"Control Flow", "Data", "Execution", "Cache", "Memory"}


def test_table2_apps():
    rows = table2()
    assert [r["Benchmark"] for r in rows] == ["CG", "EP", "IS", "MG"]
    assert all(r["Class"] == "A" for r in rows)


def test_table4_and_5_nonempty():
    assert len(table4()) == 5
    assert len(table5()) == 2


def test_hostrate_matches_paper():
    rows = {r["Design"]: r for r in hostrate()}
    assert rows["Rocket1"]["Host MHz"] == 60.0
    assert rows["MILKVSim"]["Host MHz"] == 15.0
    # paper: ~25x and ~135x slowdowns
    assert rows["Rocket1"]["Slowdown"] == pytest.approx(26.7, rel=0.05)
    assert rows["MILKVSim"]["Slowdown"] == pytest.approx(133.3, rel=0.05)


SMALL = ["Cca", "CCh", "EI", "ED1", "MD", "MM"]


def test_fig1_small_subset_shape():
    r = fig1(scale=0.08, kernels=SMALL)
    assert set(r.series) == {"BananaPiSim", "FastBananaPiSim"}
    assert r.labels == SMALL
    # dual-issue hardware wins on independent integer work
    assert r.value("BananaPiSim", "EI") < 1.0
    # DRAM-bound chase: simulation clearly slower
    assert r.value("BananaPiSim", "MM") < 0.8


def test_fig1_batched_matches_serial():
    """batched=True farms one sweep job per kernel instead of one job
    per (kernel, config); the figure must come out identical."""
    from repro.accel import memo

    kernels = ["EI", "MM"]
    serial = fig1(scale=0.08, kernels=kernels)
    memo.clear_caches()
    batched = fig1(scale=0.08, kernels=kernels, batched=True)
    assert batched.series == serial.series
    assert batched.meta["hw_seconds"] == serial.meta["hw_seconds"]


def test_fig2_small_subset_shape():
    r = fig2(scale=0.08, kernels=SMALL)
    assert set(r.series) == {"SmallBOOM", "MediumBOOM", "LargeBOOM", "MILKVSim"}
    # larger BOOMs get closer to the hardware on compute kernels
    assert r.value("LargeBOOM", "EI") > r.value("SmallBOOM", "EI")


def test_fig5_small():
    r = fig5(rank_counts=[1, 2], mesh_n=5)
    assert r.labels == ["1", "2"]
    for vals in r.series.values():
        assert all(v > 0 for v in vals)
    out = compare_app_to_paper(r)
    assert "paper vs measured" in out


def test_compare_app_rejects_unknown():
    r = fig5(rank_counts=[1], mesh_n=4)
    r.experiment = "fig9"
    with pytest.raises(KeyError):
        compare_app_to_paper(r)


def test_category_summary_renders():
    r = fig1(scale=0.08, kernels=SMALL)
    out = render_category_summary(r)
    assert "geomean" in out


# ------------------------------------------------------------ tuning

def test_fidelity_self_is_perfect():
    s = fidelity(ROCKET1, ROCKET1, scale=0.05, kernels=["Cca", "EI", "MD"])
    assert s.score == pytest.approx(0.0, abs=1e-9)


def test_fidelity_worst_ranking():
    s = fidelity(BANANA_PI_HW, BANANA_PI_SIM, scale=0.05,
                 kernels=["Cca", "EI", "MM"])
    worst = s.worst(1)
    assert len(worst) == 1
    assert abs(math.log2(worst[0][1])) >= max(
        abs(math.log2(v)) for v in s.per_kernel.values()
    ) - 1e-12


def test_tuning_walk_prefers_tuned_models():
    steps = tune_for_banana_pi(scale=0.06, kernels=QUICK_KERNELS)
    names = [s.config for s in steps]
    # the tuned Banana Pi model should beat plain Rocket1
    assert names.index("BananaPiSim") < names.index("Rocket1") or \
        names.index("FastBananaPiSim") < names.index("Rocket1")
    assert all(s.score >= 0 for s in steps)
