"""Tests for the autotuner and the roofline analysis."""

import pytest

from repro.analysis.autotune import ROCKET_KNOBS, autotune
from repro.analysis.roofline import machine_roofs, roofline_point
from repro.soc import BANANA_PI_HW, LARGE_BOOM, MILKV_HW, ROCKET1, WithVectorUnit
from repro.workloads.microbench import get_kernel

KERNELS = ["EI", "ED1", "MD", "MM"]


# ------------------------------------------------------------ autotune

def test_autotune_never_worsens():
    r = autotune(ROCKET1, BANANA_PI_HW, kernels=KERNELS, scale=0.1)
    base = autotune(ROCKET1, BANANA_PI_HW, knobs={}, kernels=KERNELS, scale=0.1)
    assert r.score.score <= base.score.score + 1e-12
    for step in r.steps:
        assert step.improvement > 0


def test_autotune_reaches_the_papers_conclusion():
    """Greedy search over the §4 knobs should pick the 2x clock (the
    dual-issue proxy), the move the paper found most effective."""
    r = autotune(ROCKET1, BANANA_PI_HW, kernels=["EI", "ED1", "Cca"],
                 scale=0.1)
    assert any("WithClock" in s.knob for s in r.steps)


def test_autotune_skips_inapplicable_knobs():
    r = autotune(LARGE_BOOM, MILKV_HW,
                 knobs={"WithVectorUnit()": WithVectorUnit()},
                 kernels=["EI"], scale=0.05)
    assert r.steps == []  # vector fragment raises on OoO -> skipped


def test_autotune_summary_renders():
    r = autotune(ROCKET1, BANANA_PI_HW, kernels=["EI"], scale=0.05)
    assert "autotuned" in r.summary()
    assert r.evaluations >= 1


# ------------------------------------------------------------ roofline

def test_machine_roofs_values():
    roofs = machine_roofs(ROCKET1)
    # 4 cores x 1 FP/cycle x 1.6 GHz = 6.4 GFLOP/s; DDR3-2000 = 16 GB/s
    assert roofs.peak_gflops == pytest.approx(6.4)
    assert roofs.peak_gbytes == pytest.approx(16.0)
    assert roofs.ridge_intensity == pytest.approx(0.4)
    assert roofs.attainable_gflops(0.1) == pytest.approx(1.6)
    assert roofs.attainable_gflops(100.0) == pytest.approx(6.4)


def test_cache_resident_kernel_is_compute_bound():
    t = get_kernel("EF").build(scale=0.1)  # independent FMAs, tiny footprint
    p = roofline_point(ROCKET1, t, kernel="EF")
    assert p.bound == "compute"
    assert p.intensity > 10
    assert 0 < p.achieved_gflops <= p.attainable_gflops * 1.05


def test_dram_kernel_is_memory_bound():
    # a streaming FMA over a DRAM-sized footprint: 1 FLOP per 64B line
    import numpy as np

    from repro.isa.opcodes import OpClass
    from repro.isa.trace import TraceBuilder

    b = TraceBuilder()
    for i in range(3000):
        b.load(40, 0x400_0000 + i * 64)
        b.fp(OpClass.FP_FMA, 44, 40, 41)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(len(t), dtype=np.uint64) % 64) * 4
    p = roofline_point(ROCKET1, t, kernel="stream-fma", warmup=False)
    assert p.bound == "memory"
    assert p.intensity < 0.4
    assert p.achieved_gflops < p.attainable_gflops


def test_zero_flop_kernel_degenerates_gracefully():
    t = get_kernel("MM").build(scale=0.1)  # pointer chase: no FLOPs
    p = roofline_point(ROCKET1, t, kernel="MM", warmup=False)
    assert p.achieved_gflops == 0.0
    assert p.intensity == 0.0
    assert p.efficiency == 0.0


def test_rooflines_differ_between_platforms():
    hw = machine_roofs(BANANA_PI_HW)
    sim = machine_roofs(ROCKET1)
    assert hw.peak_gflops > sim.peak_gflops   # dual-issue
    assert hw.peak_gbytes > sim.peak_gbytes   # LPDDR4 vs DDR3
