"""Branch predictor unit tests."""

import numpy as np
import pytest

from repro.core.branch import (
    BTB,
    BimodalBHT,
    BranchUnit,
    GShare,
    ReturnAddressStack,
    TAGE,
    boom_branch_unit,
    rocket_branch_unit,
)
from repro.isa.opcodes import OpClass


def mispredict_rate(pred, outcomes, pc=0x1000):
    wrong = 0
    for t in outcomes:
        if pred.predict(pc) != t:
            wrong += 1
        pred.update(pc, t)
    return wrong / len(outcomes)


def test_bimodal_learns_bias():
    rate = mispredict_rate(BimodalBHT(64), [True] * 1000)
    assert rate < 0.01


def test_bimodal_alternating_is_bad():
    # strict alternation defeats a 2-bit counter
    outcomes = [bool(i % 2) for i in range(1000)]
    rate = mispredict_rate(BimodalBHT(64), outcomes)
    assert rate > 0.4


def test_gshare_learns_alternation():
    outcomes = [bool(i % 2) for i in range(2000)]
    rate = mispredict_rate(GShare(1024, hist_bits=8), outcomes)
    assert rate < 0.1


def test_random_is_unpredictable_for_all():
    rng = np.random.default_rng(42)
    outcomes = list(rng.random(2000) < 0.5)
    for pred in (BimodalBHT(512), GShare(1024), TAGE()):
        assert mispredict_rate(pred, outcomes) > 0.35


def test_tage_learns_long_patterns():
    # period-7 pattern: beyond bimodal, well within TAGE history reach
    pattern = [True, True, False, True, False, False, True]
    outcomes = pattern * 300
    tage_rate = mispredict_rate(TAGE(num_tables=4), outcomes)
    bimodal_rate = mispredict_rate(BimodalBHT(512), outcomes)
    assert tage_rate < bimodal_rate
    assert tage_rate < 0.1


def test_tage_beats_bimodal_on_correlated_branches():
    # outcome follows an LFSR over the previous 4 outcomes (x^4 + x + 1):
    # period-15 pseudo-noise, fully determined by history
    hist = [True, False, False, True]
    outcomes = []
    for _ in range(3000):
        t = hist[-4] ^ hist[-1]
        outcomes.append(t)
        hist.append(t)
    assert 0.3 < np.mean(outcomes) < 0.7  # pattern is non-degenerate
    tage_rate = mispredict_rate(TAGE(), outcomes)
    bimodal_rate = mispredict_rate(BimodalBHT(512), outcomes)
    assert tage_rate < bimodal_rate
    assert tage_rate < 0.05


def test_btb_basic():
    btb = BTB(entries=8, assoc=2)
    assert btb.lookup(0x100) is None
    btb.insert(0x100, 0x2000)
    assert btb.lookup(0x100) == 0x2000


def test_btb_capacity_eviction():
    btb = BTB(entries=4, assoc=2)  # 2 sets x 2 ways
    # 3 pcs in the same set -> one must be evicted
    pcs = [0x0, 0x10, 0x20]  # (pc>>2) % 2 == 0 for all
    for pc in pcs:
        btb.insert(pc, pc + 0x1000)
    found = sum(btb.lookup(pc) is not None for pc in pcs)
    assert found == 2


def test_ras_lifo():
    ras = ReturnAddressStack(depth=4)
    for a in (1, 2, 3):
        ras.push(a)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() == 1
    assert ras.pop() is None


def test_ras_overflow_wraps():
    ras = ReturnAddressStack(depth=2)
    for a in (1, 2, 3):
        ras.push(a)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None  # 1 was overwritten


def test_deep_recursion_defeats_shallow_ras():
    """CRd-style: 1000-deep recursion overflows a 6-entry RAS."""
    shallow = rocket_branch_unit(ras_depth=6)
    deep = boom_branch_unit(ras_depth=32)
    depth = 40
    for bru in (shallow, deep):
        # calls then returns
        for i in range(depth):
            bru.resolve(int(OpClass.CALL), 0x100 + 8 * i, True, 0x5000 + 16 * i)
        for i in reversed(range(depth)):
            bru.resolve(int(OpClass.RET), 0x5000 + 16 * i + 8, True, 0x100 + 8 * i + 4)
    assert shallow.stats.ras_mispredicts > deep.stats.ras_mispredicts


def test_branch_unit_flush_on_mispredict():
    bru = rocket_branch_unit()
    # untrained predictor predicts not-taken; a taken branch flushes
    kind = bru.resolve(int(OpClass.BRANCH), 0x100, True, 0x200)
    assert kind == BranchUnit.FLUSH


def test_branch_unit_correct_after_training():
    bru = rocket_branch_unit()
    for _ in range(8):
        bru.resolve(int(OpClass.BRANCH), 0x100, True, 0x200)
    kind = bru.resolve(int(OpClass.BRANCH), 0x100, True, 0x200)
    assert kind == BranchUnit.CORRECT


def test_branch_unit_jump_btb_warmup():
    bru = rocket_branch_unit()
    assert bru.resolve(int(OpClass.JUMP), 0x100, True, 0x900) == BranchUnit.BUBBLE
    assert bru.resolve(int(OpClass.JUMP), 0x100, True, 0x900) == BranchUnit.CORRECT


def test_predictor_validation():
    with pytest.raises(ValueError):
        BimodalBHT(100)  # not a power of two
    with pytest.raises(ValueError):
        ReturnAddressStack(0)
    with pytest.raises(ValueError):
        BTB(entries=7, assoc=2)
