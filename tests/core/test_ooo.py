"""Behavioural tests of the out-of-order (BOOM-like) core model."""

import pytest

from repro.core.inorder import InOrderConfig, InOrderCore
from repro.core.ooo import OoOConfig, OoOCore
from repro.isa.trace import TraceBuilder

from .conftest import alu_stream, branch_stream, load_stream, make_port, pointer_chase

SMALL = OoOConfig(fetch_width=4, decode_width=1, rob_size=32,
                  int_iq=8, int_issue=1, mem_iq=8, mem_issue=1,
                  fp_iq=8, fp_issue=1, ldq=8, stq=8)
MEDIUM = OoOConfig(fetch_width=4, decode_width=2, rob_size=64,
                   int_iq=20, int_issue=2, mem_iq=12, mem_issue=1,
                   fp_iq=16, fp_issue=1, ldq=16, stq=16)
LARGE = OoOConfig(fetch_width=8, decode_width=3, rob_size=96,
                  int_iq=32, int_issue=3, mem_iq=16, mem_issue=1,
                  fp_iq=24, fp_issue=1, ldq=24, stq=24)


def run(trace, cfg=SMALL, port=None):
    return OoOCore(cfg, port or make_port()).run(trace)


def test_throughput_tracks_decode_width():
    t = alu_stream(6000)
    r1 = run(t, SMALL)
    r2 = run(t, MEDIUM)
    r3 = run(t, LARGE)
    assert 0.8 < r1.ipc <= 1.05
    assert 1.5 < r2.ipc <= 2.05
    assert 2.2 < r3.ipc <= 3.05


def test_dependent_chain_is_serialised():
    r = run(alu_stream(3000, dependent=True), LARGE)
    assert r.ipc <= 1.05  # one-cycle chain: at most 1 IPC regardless of width


def test_ooo_hides_misses_better_than_inorder():
    """Loads feeding dependent consumers over an L2-resident set: the
    in-order core serialises at each use, the OoO window overlaps them."""
    from repro.isa.trace import TraceBuilder
    from .conftest import loop_pcs

    b = TraceBuilder()
    for i in range(1200):
        dst = 5 + (i % 8)
        b.load(dst, 0x100000 + i * 128)  # misses L1, hits L2 once warm
        b.alu(15, dst, 20)               # dependent consumer
    t = loop_pcs(b.build())
    io = InOrderCore(InOrderConfig(), make_port())
    oo = OoOCore(LARGE, make_port())
    io.run(t)
    oo.run(t)
    r_io = io.run(t)
    r_oo = oo.run(t)
    assert r_oo.cycles < 0.7 * r_io.cycles


def test_rob_size_limits_mlp():
    """Streaming DRAM misses: a bigger ROB/LDQ exposes more MLP."""
    t = load_stream(600, stride=4096, base=0x800000)
    tiny = OoOConfig(fetch_width=8, decode_width=3, rob_size=8,
                     int_iq=8, mem_iq=8, fp_iq=8, ldq=2, stq=2)
    r_tiny = run(t, tiny)
    r_large = run(t, LARGE)
    assert r_large.cycles < r_tiny.cycles * 0.7


def test_pointer_chase_no_mlp_benefit():
    """Dependent misses can't be overlapped even by a large window."""
    t = pointer_chase(300, footprint_bytes=64 << 20)
    r_small = run(t, SMALL, port=make_port())
    r_large = run(t, LARGE, port=make_port())
    # within 25%: the window doesn't help a serial chain
    assert abs(r_small.cycles - r_large.cycles) < 0.25 * r_small.cycles


def test_mispredicts_cost_more_than_inorder():
    t = branch_stream(2000, "random", seed=5)
    r_bias = run(branch_stream(2000, "biased"), LARGE, port=make_port())
    r_rand = run(t, LARGE, port=make_port())
    assert r_rand.cycles > 1.5 * r_bias.cycles


def test_tage_handles_patterned_branches():
    t = branch_stream(3000, "alternating")
    r = run(t, LARGE)
    assert r.mispredicts < 0.05 * r.branches


def test_stq_capacity_limits_store_streams():
    b = TraceBuilder()
    for i in range(400):
        b.store(7, 0x900000 + i * 4096)
    small_q = OoOConfig(fetch_width=8, decode_width=3, rob_size=96,
                        int_iq=32, mem_iq=16, fp_iq=24, ldq=24, stq=2)
    r_small = run(b.build(), small_q, port=make_port())
    r_large = run(b.build(), LARGE, port=make_port())
    assert r_small.cycles > r_large.cycles


def test_fp_ops_use_fp_queue():
    from repro.isa.opcodes import OpClass

    b = TraceBuilder()
    for i in range(2000):
        b.fp(OpClass.FP_FMA, 40 + i % 4, 50, 51)
    one_fp = OoOConfig(fetch_width=8, decode_width=3, rob_size=96,
                       int_iq=32, int_issue=3, mem_iq=16, fp_iq=24, fp_issue=1,
                       ldq=24, stq=24)
    r = run(b.build(), one_fp)
    # 1 FP issue port -> ~1 IPC even at decode width 3
    assert r.ipc <= 1.1


def test_instruction_count_preserved():
    t = alu_stream(1234)
    r = run(t)
    assert r.instructions == 1234


def test_reset_clears_state():
    """A reset core on a fresh hierarchy reproduces the first run."""
    t = alu_stream(500)
    core = OoOCore(LARGE, make_port())
    r1 = core.run(t)
    core.reset()
    core.port = make_port()  # fresh hierarchy (uncore state is external)
    r2 = core.run(t)
    assert abs(r1.cycles - r2.cycles) <= 2


def test_config_validation():
    with pytest.raises(ValueError):
        OoOConfig(rob_size=0)
    with pytest.raises(ValueError):
        OoOConfig(fetch_width=0)


def test_effective_commit_width_default():
    assert OoOConfig(decode_width=3).effective_commit_width == 3
    assert OoOConfig(decode_width=3, commit_width=4).effective_commit_width == 4
