"""Shared fixtures for core-model tests: small hierarchies and trace helpers."""

import numpy as np
import pytest

from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig, TilePort, Uncore


@pytest.fixture
def tile_port():
    """A small single-tile hierarchy with fast, deterministic parameters."""
    cfg = HierarchyConfig(
        l1i=CacheConfig(sets=64, ways=4, hit_latency=1),
        l1d=CacheConfig(sets=64, ways=4, hit_latency=2, mshrs=4),
        l2=CacheConfig(sets=512, ways=8, hit_latency=12, mshrs=8),
        core_ghz=1.6,
    )
    return TilePort(Uncore(cfg), tile_id=0)


def make_port():
    cfg = HierarchyConfig(core_ghz=1.6)
    return TilePort(Uncore(cfg), tile_id=0)


def loop_pcs(trace, body_instrs=64, base=0x1_0000):
    """Rewrite the PC stream so the code loops over a small body, the way
    real benchmark kernels do (trace generators emit monotonic PCs)."""
    n = len(trace)
    trace.pc[:] = base + (np.arange(n, dtype=np.uint64) % body_instrs) * 4
    return trace


def alu_stream(n, dependent=False):
    """n integer ALU ops in a loop; chained through r5 when dependent."""
    b = TraceBuilder()
    if dependent:
        for _ in range(n):
            b.alu(5, 5, 5)
    else:
        for i in range(n):
            b.alu(5 + (i % 8), 20, 21)
    return loop_pcs(b.build())


def load_stream(n, stride=64, base=0x10_0000, dst_rotate=8):
    """n loads at the given stride (independent), loop-shaped code."""
    b = TraceBuilder()
    for i in range(n):
        b.load(5 + (i % dst_rotate), base + i * stride)
    return loop_pcs(b.build())


def pointer_chase(n, footprint_bytes, seed=3, base=0x20_0000):
    """n dependent loads over a random cycle within footprint_bytes."""
    rng = np.random.default_rng(seed)
    nlines = max(2, footprint_bytes // 64)
    perm = rng.permutation(nlines)
    b = TraceBuilder()
    idx = 0
    for i in range(n):
        addr = base + int(perm[idx % nlines]) * 64
        b.load(5, addr, base=5)
        idx += 1
    return loop_pcs(b.build())


def branch_stream(n, pattern="biased", seed=0):
    """ALU+branch loop; each dynamic branch reuses the same static PC."""
    rng = np.random.default_rng(seed)
    b = TraceBuilder()
    loop_top = b.pc
    for i in range(n):
        b.pc = loop_top
        b.alu(6, 6, 7)
        if pattern == "biased":
            taken = True
        elif pattern == "alternating":
            taken = bool(i % 2)
        else:
            taken = bool(rng.integers(0, 2))
        b.branch(taken, src1=6, target=loop_top)
    return b.build()
