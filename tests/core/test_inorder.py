"""Behavioural tests of the in-order (Rocket-like) core model."""

import pytest

from repro.core.inorder import InOrderConfig, InOrderCore
from repro.isa.trace import TraceBuilder

from .conftest import alu_stream, branch_stream, load_stream, make_port, pointer_chase


def run(trace, cfg=None, port=None):
    core = InOrderCore(cfg or InOrderConfig(), port or make_port())
    return core.run(trace)


def test_single_issue_alu_ipc_near_one():
    r = run(alu_stream(4000))
    assert 0.9 < r.ipc <= 1.0


def test_dependent_chain_same_as_independent_single_issue():
    # with full bypass, 1-cycle ALU chains still sustain 1 IPC single-issue
    r_ind = run(alu_stream(2000, dependent=False))
    r_dep = run(alu_stream(2000, dependent=True))
    assert abs(r_ind.cycles - r_dep.cycles) < 50


def test_dual_issue_doubles_independent_alu():
    # warm the I-cache first so the steady-state rate is measured
    cfg2 = InOrderConfig(issue_width=2, pipeline_depth=8)
    t = alu_stream(4000)
    c1 = InOrderCore(InOrderConfig(), make_port())
    c2 = InOrderCore(cfg2, make_port())
    c1.run(t); c2.run(t)
    r1, r2 = c1.run(t), c2.run(t)
    assert r2.ipc > 1.8
    assert r1.cycles / r2.cycles > 1.8


def test_dual_issue_no_gain_on_dependent_chain():
    cfg2 = InOrderConfig(issue_width=2)
    r = run(alu_stream(2000, dependent=True), cfg=cfg2)
    assert r.ipc < 1.1


def test_div_latency_and_structural_hazard():
    b = TraceBuilder()
    for _ in range(100):
        b.div(5, 6, 7)
    r = run(b.build())
    # unpipelined 16-cycle divider: ~16 cycles per div
    assert r.cpi > 10


def test_l1_hit_loads_fast():
    port = make_port()
    trace = load_stream(2000, stride=8)  # 16 KiB footprint, fits L1
    core = InOrderCore(InOrderConfig(), port)
    core.run(trace)  # warm
    r = core.run(trace)
    assert r.cpi < 2.5


def test_dram_bound_pointer_chase_slow():
    port = make_port()
    trace = pointer_chase(300, footprint_bytes=64 << 20)  # 64 MiB, misses everywhere
    r = InOrderCore(InOrderConfig(), port).run(trace)
    # every load is a dependent DRAM miss: CPI ~ DRAM latency
    assert r.cpi > 40


def test_cache_resident_chase_much_faster_than_dram():
    small = pointer_chase(300, footprint_bytes=8 << 10)
    big = pointer_chase(300, footprint_bytes=64 << 20)
    r_small = InOrderCore(InOrderConfig(), make_port()).run(small)
    r_big = InOrderCore(InOrderConfig(), make_port()).run(big)
    assert r_big.cycles > 3 * r_small.cycles


def test_mispredict_penalty_visible():
    r_biased = run(branch_stream(2000, "biased"))
    r_random = run(branch_stream(2000, "random"))
    assert r_random.cycles > r_biased.cycles * 1.3
    assert r_random.mispredicts > 700


def test_deeper_pipeline_pays_more_per_mispredict():
    t = branch_stream(2000, "random")
    r5 = run(t, cfg=InOrderConfig(pipeline_depth=5))
    r8 = run(t, cfg=InOrderConfig(pipeline_depth=8))
    assert r8.cycles > r5.cycles


def test_store_buffer_hides_store_latency():
    from .conftest import loop_pcs

    b = TraceBuilder()
    for i in range(500):
        b.store(7, 0x50_0000 + (i % 16) * 8)
        b.alu(5, 5, 6)
    r = run(loop_pcs(b.build()))
    assert r.cpi < 2.0


def test_store_buffer_full_stalls():
    # back-to-back stores to distinct DRAM lines overwhelm a tiny buffer
    b = TraceBuilder()
    for i in range(300):
        b.store(7, 0x50_0000 + i * 4096)
    r_small = run(b.build(), cfg=InOrderConfig(store_buffer=1))
    r_big = run(b.build(), cfg=InOrderConfig(store_buffer=16))
    assert r_small.cycles > r_big.cycles


def test_icache_misses_stall_frontend():
    # jump across many distinct 64-byte lines spanning > L1I capacity
    b = TraceBuilder()
    for i in range(2000):
        b.jump(target=((i * 131) % 4096) * 64 + 0x40_0000)
    r = run(b.build())
    assert r.l1i_misses > 100
    assert r.stalls["frontend"] > 0


def test_result_counters_consistent():
    t = alu_stream(1000)
    r = run(t)
    assert r.instructions == 1000
    assert r.cycles > 0
    assert r.ipc == pytest.approx(1000 / r.cycles)


def test_stateful_across_runs():
    """Caches stay warm across run() calls on the same core."""
    port = make_port()
    core = InOrderCore(InOrderConfig(), port)
    t = load_stream(500, stride=64)
    r1 = core.run(t)
    r2 = core.run(t)
    assert r2.cycles < r1.cycles
    assert r2.l1d_misses == 0


def test_config_validation():
    with pytest.raises(ValueError):
        InOrderConfig(issue_width=0)
    with pytest.raises(ValueError):
        InOrderConfig(pipeline_depth=2)
