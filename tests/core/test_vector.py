"""RVV vector-unit model tests."""

import dataclasses

import numpy as np
import pytest

from repro.core.inorder import InOrderConfig, InOrderCore
from repro.core.vector import VectorConfig
from repro.isa.trace import TraceBuilder
from repro.soc import BANANA_PI_HW, System

from .conftest import make_port


def vcfg(**kw):
    return VectorConfig(**kw)


def k1_with_rvv(**vkw):
    return BANANA_PI_HW.with_(
        name="K1-RVV",
        inorder=dataclasses.replace(BANANA_PI_HW.inorder,
                                    vector=VectorConfig(**vkw)),
    )


def loop_pcs(t):
    t.pc[:] = 0x1_0000 + (np.arange(len(t), dtype=np.uint64) % 64) * 4
    return t


def axpy_scalar(n):
    from repro.isa.opcodes import OpClass

    b = TraceBuilder()
    for i in range(n):
        b.load(40, 0x100000 + i * 8)
        b.load(41, 0x200000 + i * 8)
        b.fp(OpClass.FP_FMA, 42, 40, 41)
        b.store(42, 0x300000 + i * 8)
    return loop_pcs(b.build())


def axpy_vector(n, vl=32):
    b = TraceBuilder()
    for i in range(0, n, vl // 8):
        b.vload(40, 0x100000 + i * 8, vl)
        b.vload(41, 0x200000 + i * 8, vl)
        b.vfma(42, 40, 41, nbytes=vl)
        b.vstore(42, 0x300000 + i * 8, vl)
    return loop_pcs(b.build())


# ------------------------------------------------------------ config

def test_vector_config_validation():
    with pytest.raises(ValueError):
        VectorConfig(vlen_bits=0)
    with pytest.raises(ValueError):
        VectorConfig(lane_bits=100)  # not a multiple of 8
    with pytest.raises(ValueError):
        VectorConfig(startup=-1)


def test_beat_arithmetic():
    v = VectorConfig(vlen_bits=256, lane_bits=128, mem_bits_per_cycle=128)
    assert v.exec_beats(256) == 2
    assert v.exec_beats(128) == 1
    assert v.mem_beats(32) == 2
    assert v.mem_beats(16) == 1


def test_vector_trace_width_validation():
    b = TraceBuilder()
    with pytest.raises(ValueError):
        b.vload(40, 0x1000, 0)
    with pytest.raises(ValueError):
        b.vload(40, 0x1000, 300)


# ------------------------------------------------------------ execution

def test_scalar_core_rejects_vector_ops():
    core = InOrderCore(InOrderConfig(), make_port())
    b = TraceBuilder()
    b.vload(40, 0x1000, 32)
    with pytest.raises(ValueError, match="no vector unit"):
        core.run(b.build())


def test_vector_unit_speeds_up_streaming():
    n = 2048
    cfg = k1_with_rvv()
    s_sys, v_sys = System(cfg), System(cfg)
    s_sys.run(axpy_scalar(n))
    v_sys.run(axpy_vector(n))
    r_s = s_sys.run(axpy_scalar(n))
    r_v = v_sys.run(axpy_vector(n))
    assert r_v.cycles < 0.6 * r_s.cycles  # >1.7x from 256-bit vectors


def test_vector_presence_does_not_change_scalar_timing():
    n = 1500
    plain, rvv = System(BANANA_PI_HW), System(k1_with_rvv())
    plain.run(axpy_scalar(n))
    rvv.run(axpy_scalar(n))
    assert plain.run(axpy_scalar(n)).cycles == rvv.run(axpy_scalar(n)).cycles


def test_wider_lanes_are_faster():
    n = 2048
    narrow = System(k1_with_rvv(lane_bits=64, mem_bits_per_cycle=64))
    wide = System(k1_with_rvv(lane_bits=256, mem_bits_per_cycle=256))
    t = axpy_vector(n)
    narrow.run(t)
    wide.run(t)
    assert wide.run(t).cycles < narrow.run(t).cycles


def test_vector_loads_touch_all_lines():
    cfg = k1_with_rvv()
    sys_ = System(cfg)
    b = TraceBuilder()
    # one 128-byte vector load spans two cache lines
    b.vload(40, 0x40_0000, 128)
    r = sys_.run(loop_pcs(b.build()))
    assert sys_.tiles[0].port.l1d.stats.accesses >= 2


def test_vector_twin_kernels_build():
    from repro.workloads.microbench.vectorbench import vector_twin

    k = vector_twin("DP1d")
    t = k.build(scale=0.1)
    assert len(t) > 10
    with pytest.raises(KeyError):
        vector_twin("MM")


def test_rvv_ablation_shape():
    """The extension question: vectorising DP1d clearly helps the K1."""
    from repro.workloads.microbench import get_kernel
    from repro.workloads.microbench.vectorbench import vector_twin

    cfg = k1_with_rvv()
    scalar = get_kernel("DP1d").build(scale=0.2)
    vector = vector_twin("DP1d").build(scale=0.2)
    s_sys, v_sys = System(cfg), System(cfg)
    s_sys.run(scalar)
    v_sys.run(vector)
    t_s = s_sys.run(scalar).cycles
    t_v = v_sys.run(vector).cycles
    assert t_v < 0.7 * t_s


def test_ooo_core_rejects_vector_ops():
    from repro.core.ooo import OoOConfig, OoOCore

    core = OoOCore(OoOConfig(), make_port())
    b = TraceBuilder()
    b.vfma(42, 40, 41)
    with pytest.raises(ValueError, match="no vector unit"):
        core.run(b.build())
