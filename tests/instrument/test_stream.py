"""InstrumentStream: JSONL framing, sealing, torn tails, live tailing."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.instrument import (
    STREAM_SCHEMA,
    InstrumentStream,
    read_stream,
    tail_stream,
)


def test_memory_stream_round_trip():
    s = InstrumentStream()
    s.write({"t": "meta", "x": 1})
    s.write({"t": "marker", "id": 16, "value": 7})
    s.seal(reason="done")
    recs = read_stream(s)
    assert [r["t"] for r in recs] == ["meta", "marker", "seal"]
    assert recs[-1]["records"] == 2
    assert recs[-1]["schema"] == STREAM_SCHEMA


def test_file_stream_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    s = InstrumentStream(path)
    for i in range(5):
        s.write({"t": "marker", "id": 16, "value": i})
    s.seal()
    recs = read_stream(path)
    assert len(recs) == 6
    assert [r["value"] for r in recs[:-1]] == list(range(5))
    # the file is plain JSONL: every line parses on its own
    for line in path.read_text().splitlines():
        json.loads(line)


def test_seal_is_idempotent_and_write_after_seal_raises():
    s = InstrumentStream()
    s.seal(reason="a")
    s.seal(reason="b")  # no-op, not an error
    assert sum(1 for r in s.records if r["t"] == "seal") == 1
    assert s.records[-1]["reason"] == "a"
    with pytest.raises(RuntimeError):
        s.write({"t": "marker"})


def test_torn_tail_is_tolerated(tmp_path):
    path = tmp_path / "torn.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.write({"t": "marker", "id": 16, "value": 1})
    s.close()  # crash: no seal
    with open(path, "a") as f:
        f.write('{"t": "marker", "id": 16, "va')  # torn final line
    recs = read_stream(path)
    assert [r["t"] for r in recs] == ["meta", "marker"]
    assert recs[-1]["value"] == 1


def test_tail_stream_without_follow_reads_current_contents(tmp_path):
    path = tmp_path / "s.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.write({"t": "marker", "id": 16, "value": 3})
    got = list(tail_stream(path))
    assert len(got) == 2
    s.seal()
    got = list(tail_stream(path))
    assert got[-1]["t"] == "seal"


def test_tail_stream_follows_live_writer(tmp_path):
    """The farm case: a reader tails while the writer is still going."""
    path = tmp_path / "live.jsonl"

    def writer():
        s = InstrumentStream(path)
        for i in range(10):
            s.write({"t": "marker", "id": 16, "value": i})
            time.sleep(0.01)
        s.seal(reason="done")

    t = threading.Thread(target=writer)
    t.start()
    got = list(tail_stream(path, follow=True, poll_s=0.005, timeout_s=10.0))
    t.join()
    assert [r["value"] for r in got if r["t"] == "marker"] == list(range(10))
    assert got[-1]["t"] == "seal"


def test_tail_stream_times_out_without_seal(tmp_path):
    path = tmp_path / "stuck.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.close()
    t0 = time.monotonic()
    got = list(tail_stream(path, follow=True, poll_s=0.01, timeout_s=0.1))
    assert time.monotonic() - t0 < 5.0
    assert [r["t"] for r in got] == ["meta"]
