"""InstrumentStream: JSONL framing, sealing, torn tails, live tailing."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.instrument import (
    STREAM_SCHEMA,
    InstrumentStream,
    read_stream,
    tail_stream,
)


def test_memory_stream_round_trip():
    s = InstrumentStream()
    s.write({"t": "meta", "x": 1})
    s.write({"t": "marker", "id": 16, "value": 7})
    s.seal(reason="done")
    recs = read_stream(s)
    assert [r["t"] for r in recs] == ["meta", "marker", "seal"]
    assert recs[-1]["records"] == 2
    assert recs[-1]["schema"] == STREAM_SCHEMA


def test_file_stream_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    s = InstrumentStream(path)
    for i in range(5):
        s.write({"t": "marker", "id": 16, "value": i})
    s.seal()
    recs = read_stream(path)
    assert len(recs) == 6
    assert [r["value"] for r in recs[:-1]] == list(range(5))
    # the file is plain JSONL: every line parses on its own
    for line in path.read_text().splitlines():
        json.loads(line)


def test_seal_is_idempotent_and_write_after_seal_raises():
    s = InstrumentStream()
    s.seal(reason="a")
    s.seal(reason="b")  # no-op, not an error
    assert sum(1 for r in s.records if r["t"] == "seal") == 1
    assert s.records[-1]["reason"] == "a"
    with pytest.raises(RuntimeError):
        s.write({"t": "marker"})


def test_torn_tail_is_tolerated(tmp_path):
    path = tmp_path / "torn.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.write({"t": "marker", "id": 16, "value": 1})
    s.close()  # crash: no seal
    with open(path, "a") as f:
        f.write('{"t": "marker", "id": 16, "va')  # torn final line
    recs = read_stream(path)
    assert [r["t"] for r in recs] == ["meta", "marker"]
    assert recs[-1]["value"] == 1


def test_tail_stream_without_follow_reads_current_contents(tmp_path):
    path = tmp_path / "s.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.write({"t": "marker", "id": 16, "value": 3})
    got = list(tail_stream(path))
    assert len(got) == 2
    s.seal()
    got = list(tail_stream(path))
    assert got[-1]["t"] == "seal"


def test_tail_stream_follows_live_writer(tmp_path):
    """The farm case: a reader tails while the writer is still going."""
    path = tmp_path / "live.jsonl"

    def writer():
        s = InstrumentStream(path)
        for i in range(10):
            s.write({"t": "marker", "id": 16, "value": i})
            time.sleep(0.01)
        s.seal(reason="done")

    t = threading.Thread(target=writer)
    t.start()
    got = list(tail_stream(path, follow=True, poll_s=0.005, timeout_s=10.0))
    t.join()
    assert [r["value"] for r in got if r["t"] == "marker"] == list(range(10))
    assert got[-1]["t"] == "seal"


def test_tail_stream_times_out_without_seal(tmp_path):
    path = tmp_path / "stuck.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.close()
    t0 = time.monotonic()
    got = list(tail_stream(path, follow=True, poll_s=0.01, timeout_s=0.1))
    assert time.monotonic() - t0 < 5.0
    assert [r["t"] for r in got] == ["meta"]


def test_tail_follow_tolerates_torn_multibyte_tail(tmp_path):
    """A writer killed mid-append can cut a multibyte UTF-8 sequence in
    half; the tail must keep waiting for the line to complete instead of
    raising UnicodeDecodeError (the pre-fix behaviour)."""
    path = tmp_path / "torn.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.close()
    full = json.dumps({"t": "marker", "id": 16, "note": "μ-op"},
                      ensure_ascii=False).encode()
    cut = full.index("μ".encode()) + 1  # split inside the 2-byte char
    with open(path, "ab") as f:
        f.write(full[:cut])  # the in-flight, torn append

    got = []
    exc = []

    def reader():
        try:
            got.extend(tail_stream(path, follow=True, poll_s=0.005,
                                   timeout_s=10.0))
        except Exception as e:  # pragma: no cover - the regression
            exc.append(e)

    t = threading.Thread(target=reader)
    t.start()
    time.sleep(0.1)  # reader observes the torn tail while it is torn
    with open(path, "ab") as f:
        f.write(full[cut:] + b"\n")  # writer resumes, completes the line
    s2 = InstrumentStream(path)
    s2.write({"t": "marker", "id": 17, "value": 2})
    s2.seal(reason="done")
    t.join(timeout=15.0)
    assert not t.is_alive()
    assert not exc, f"tail raised on a torn in-flight record: {exc}"
    assert [r["t"] for r in got] == ["meta", "marker", "marker", "seal"]
    assert got[1]["note"] == "μ-op"


def test_tail_follow_skips_fused_torn_record(tmp_path):
    """When a killed writer's torn half-record gets fused with a resumed
    writer's next append, the unparsable line is skipped and the stream
    keeps flowing."""
    path = tmp_path / "fused.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.close()
    with open(path, "ab") as f:
        f.write(b'{"t": "marker", "id": 16, "va')  # torn, never finished
    # a fresh writer appends whole records after the tear: the torn
    # bytes and the first new record fuse into one garbage line
    s2 = InstrumentStream(path)
    s2.write({"t": "marker", "id": 17, "value": 9})
    s2.write({"t": "marker", "id": 18, "value": 10})
    s2.seal(reason="done")
    got = list(tail_stream(path, follow=True, poll_s=0.005, timeout_s=5.0))
    assert got[0]["t"] == "meta"
    assert got[-1]["t"] == "seal"
    assert [r["value"] for r in got if r["t"] == "marker"] == [10]


def test_read_stream_tolerates_torn_multibyte_tail(tmp_path):
    path = tmp_path / "torn-mb.jsonl"
    s = InstrumentStream(path)
    s.write({"t": "meta"})
    s.write({"t": "marker", "id": 16, "value": 1})
    s.close()
    full = json.dumps({"t": "marker", "note": "μ-op"},
                      ensure_ascii=False).encode()
    with open(path, "ab") as f:
        f.write(full[:full.index("μ".encode()) + 1])
    recs = read_stream(path)  # must not raise
    assert [r["t"] for r in recs] == ["meta", "marker"]
