"""Counter sampling edge cases and the bit-identity contract."""

from __future__ import annotations

import dataclasses

from repro.check.oracle import diff_instrument
from repro.check.progen import generate_program
from repro.check.runner import ALL_TIERS, run_check
from repro.instrument import Instrument, InstrumentSpec, TraceTrigger, read_stream
from repro.soc.presets import get_config
from repro.soc.system import System
from repro.workloads.microbench import get_kernel

QUANTUM, CHUNK = 512, 256


def kernel_trace(seed=0):
    return get_kernel("MM").build(scale=0.05, seed=seed)


# -- sampling edge cases ------------------------------------------------------


def test_interval_larger_than_run_still_yields_final_sample():
    trace = kernel_trace()
    system = System(get_config("Rocket1"))
    inst = Instrument(InstrumentSpec(counter_interval=10**12))
    system.attach_instrument(inst)
    system.run(trace)
    inst.seal()
    samples = [r for r in read_stream(inst.stream) if r["t"] == "counter"]
    assert len(samples) == 1
    assert samples[0]["final"] is True
    assert samples[0]["dinstructions"] == len(trace)


def test_sampling_decimates_not_duplicates():
    """A chunk that skips several scheduled ticks produces one sample."""
    trace = kernel_trace()
    system = System(get_config("Rocket1"))
    inst = Instrument(InstrumentSpec(counter_interval=1))  # tick every cycle
    system.attach_instrument(inst)
    system.run_parallel([trace], quantum=QUANTUM, chunk=CHUNK)
    inst.seal()
    samples = [r for r in read_stream(inst.stream) if r["t"] == "counter"]
    # one sample per chunk boundary at most, not one per cycle
    assert 1 < len(samples) < len(trace)
    cycles = [s["cycle"] for s in samples]
    assert cycles == sorted(cycles)
    assert len(set(cycles[:-1])) == len(cycles[:-1])


def test_sample_deltas_sum_to_run_totals():
    trace = kernel_trace()
    system = System(get_config("Rocket1"))
    inst = Instrument(InstrumentSpec(counter_interval=5000))
    system.attach_instrument(inst)
    result = system.run_parallel([trace], quantum=QUANTUM, chunk=CHUNK)[0]
    inst.seal()
    samples = [r for r in read_stream(inst.stream) if r["t"] == "counter"]
    assert sum(s["dinstructions"] for s in samples) == result.instructions
    # cycle deltas telescope: their sum is exactly the last sampled cycle
    assert sum(s["dcycles"] for s in samples) == samples[-1]["cycle"]


# -- bit-identity -------------------------------------------------------------


def full_spec(total_cycles):
    return InstrumentSpec(
        triggers=(TraceTrigger(start_cycle=total_cycles // 3, length=64,
                               label="mid"),
                  TraceTrigger(length=32, label="head")),
        counter_interval=max(1, total_cycles // 5))


def test_instrumented_serial_run_is_bit_identical():
    trace = kernel_trace()
    ref = System(get_config("Rocket1")).run(trace)

    system = System(get_config("Rocket1"))
    inst = Instrument(full_spec(ref.cycles))
    system.attach_instrument(inst)
    got = system.run(trace)
    inst.seal()
    assert dataclasses.asdict(got) == dataclasses.asdict(ref)
    assert len(read_stream(inst.stream)) > 10


def test_instrumented_lockstep_run_is_bit_identical():
    trace = kernel_trace()
    cfg = get_config("Rocket2")
    traces = [trace] * min(2, cfg.ncores)
    ref = System(cfg).run_parallel(traces, quantum=QUANTUM, chunk=CHUNK)

    system = System(cfg)
    inst = Instrument(full_spec(max(r.cycles for r in ref)))
    system.attach_instrument(inst)
    got = system.run_parallel(traces, quantum=QUANTUM, chunk=CHUNK)
    inst.seal()
    for a, b in zip(got, ref):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_detach_instrument_seals_and_clears():
    system = System(get_config("Rocket1"))
    inst = Instrument(InstrumentSpec())
    system.attach_instrument(inst)
    system.detach_instrument()
    assert system.instrument is None
    assert inst.stream.sealed


# -- the check tier -----------------------------------------------------------


def test_instrument_is_a_default_check_tier():
    assert "instrument" in ALL_TIERS


def test_check_tier_run_with_instrumentation_enabled():
    """The satellite requirement: a repro.check tier run with
    instrumentation enabled proving results stay bit-identical."""
    report = run_check(seeds=3, tiers=("instrument",), shrink=False)
    assert report.ok, report.summary()
    assert report.tier_programs.get("instrument", 0) >= 1


def test_diff_instrument_oracle_on_one_program():
    from repro.check.oracle import run_program

    prog = generate_program(11)
    trace = run_program(prog).trace_so_far
    assert diff_instrument(trace, seed=11) == []
