"""The hard satellite case: a trigger firing mid-checkpoint.

A window that is OPEN when a checkpoint lands must seal cleanly in the
donor stream, re-arm from checkpoint extras on restore, and keep the
resumed run bit-identical — with the two stream segments jointly
accounting for every record the uninterrupted run would have captured.
"""

from __future__ import annotations

import dataclasses

from repro.instrument import Instrument, InstrumentSpec, TraceTrigger, read_stream
from repro.soc.presets import get_config
from repro.soc.system import System
from repro.workloads.microbench import get_kernel

QUANTUM, CHUNK = 512, 256


def kernel_trace():
    return get_kernel("MM").build(scale=0.05, seed=0)


def spanning_spec(total_cycles):
    """A window guaranteed to be open around the checkpoint point, plus
    periodic counter sampling."""
    return InstrumentSpec(
        triggers=(TraceTrigger(start_cycle=QUANTUM, length=10**6,
                               max_records=10**6, label="span"),),
        counter_interval=total_cycles // 7 or 1)


def trace_count(records, window="span"):
    return len([r for r in records
                if r["t"] == "trace" and r["window"] == window])


def test_trigger_fires_mid_checkpoint_and_rearms_on_restore(tmp_path):
    trace = kernel_trace()
    cfg = get_config("Rocket1")
    traces = [trace]

    # uninterrupted references: bare, then instrumented
    ref = System(cfg).run_parallel(traces, quantum=QUANTUM, chunk=CHUNK)
    total = int(ref[0].cycles)

    whole = System(cfg)
    whole_inst = Instrument(spanning_spec(total))
    whole.attach_instrument(whole_inst)
    assert whole.run_parallel(traces, quantum=QUANTUM, chunk=CHUNK)
    whole_inst.seal()
    whole_recs = read_stream(whole_inst.stream)
    assert trace_count(whole_recs) > 0, "window never opened — bad setup"

    # donor run: step past the trigger, checkpoint while the window is OPEN
    donor = System(cfg)
    donor_inst = Instrument(spanning_spec(total),
                            path=tmp_path / "donor.jsonl")
    donor.attach_instrument(donor_inst)
    run = donor.start_parallel(traces, quantum=QUANTUM, chunk=CHUNK)
    for _ in range(3):
        assert run.step(), "run finished before the checkpoint — bad setup"
    window = donor_inst.tracer.windows[0]
    assert window.open, "window should be open at checkpoint time"
    ckpt = donor.save_checkpoint(run=run)
    assert ckpt.extras["instrument"]["windows"][0]["state"] == "open"
    donor_inst.seal(reason="checkpoint")
    donor_recs = read_stream(tmp_path / "donor.jsonl")
    assert donor_recs[-1]["reason"] == "checkpoint"

    # restore onto a fresh system with a fresh stream; extras re-arm it
    resumed = System(cfg)
    resumed_inst = Instrument(spanning_spec(total),
                              path=tmp_path / "resumed.jsonl")
    resumed.attach_instrument(resumed_inst, resumed=True)
    rest = resumed.restore(ckpt, traces=traces)
    # load_state happened inside restore: the window is open again,
    # mid-flight, without re-emitting an "open" event
    assert resumed_inst.tracer.windows[0].open
    got = rest.run()
    resumed_inst.seal()
    resumed_recs = read_stream(tmp_path / "resumed.jsonl")

    # bit-identity: the resumed results match the uninterrupted bare run
    for a, b in zip(got, ref):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    # the resumed stream marks itself as a continuation
    assert resumed_recs[0]["t"] == "meta" and resumed_recs[0]["resumed"]

    # the two segments jointly account for the uninterrupted capture
    assert (trace_count(donor_recs) + trace_count(resumed_recs)
            == trace_count(whole_recs))
    # exactly one open (donor) and one close (resumed) across segments
    events = [r["event"] for r in donor_recs + resumed_recs
              if r["t"] == "window"]
    assert events == ["open", "close"]

    # counter samples keep a monotonic cycle axis across the seam
    cycles = [r["cycle"] for r in donor_recs + resumed_recs
              if r["t"] == "counter"]
    assert cycles == sorted(cycles)


def test_restore_without_instrument_ignores_extras(tmp_path):
    """A checkpoint carrying instrument state restores fine onto a
    system with no instrument attached — observability is optional."""
    trace = kernel_trace()
    cfg = get_config("Rocket1")
    ref = System(cfg).run_parallel([trace], quantum=QUANTUM, chunk=CHUNK)

    donor = System(cfg)
    inst = Instrument(InstrumentSpec(counter_interval=1000))
    donor.attach_instrument(inst)
    run = donor.start_parallel([trace], quantum=QUANTUM, chunk=CHUNK)
    assert run.step()
    ckpt = donor.save_checkpoint(run=run)
    inst.seal(reason="checkpoint")
    assert "instrument" in ckpt.extras

    plain = System(cfg)
    got = plain.restore(ckpt, traces=[trace]).run()
    for a, b in zip(got, ref):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_spec_mismatch_on_load_state_is_rejected():
    inst = Instrument(InstrumentSpec(counter_interval=100))
    other = Instrument(InstrumentSpec(counter_interval=100,
                                      triggers=(TraceTrigger(length=5),)))
    state = other.state()
    try:
        inst.load_state(state)
    except ValueError:
        return
    raise AssertionError("mismatched window count should be rejected")
