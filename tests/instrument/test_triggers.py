"""Trigger windows: edge cases the issue calls out, plus marker decode."""

from __future__ import annotations

import pytest

from repro.instrument import (
    FIRST_USER_MARKER,
    Instrument,
    InstrumentSpec,
    TraceTrigger,
    decode_marker,
    is_marker_addr,
    marker_addr,
    read_stream,
)
from repro.isa.trace import TraceBuilder
from repro.soc.presets import get_config
from repro.soc.system import System


def linear_trace(n=400, pc0=0x1_0000):
    tb = TraceBuilder(pc0=pc0)
    for i in range(n):
        tb.alu(1, 2, 3)
    return tb.build()


def run_with(spec, trace, config="Rocket1"):
    system = System(get_config(config))
    inst = Instrument(spec)
    system.attach_instrument(inst)
    result = system.run(trace)
    inst.seal()
    return result, read_stream(inst.stream)


# -- construction validation -------------------------------------------------


def test_trigger_rejects_conflicting_and_invalid_fields():
    with pytest.raises(ValueError):
        TraceTrigger(start_pc=0x1000, start_cycle=5)
    with pytest.raises(ValueError):
        TraceTrigger(length=-1)
    with pytest.raises(ValueError):
        TraceTrigger(max_records=0)


def test_trigger_round_trips_through_dict():
    t = TraceTrigger(start_pc=0x1_0040, length=16, label="w")
    assert TraceTrigger.from_dict(t.to_dict()) == t


# -- edge case: zero-length window -------------------------------------------


def test_zero_length_window_is_a_pc_tripwire():
    """length=0 opens and immediately closes: an open/close pair with
    zero trace records — a PC tripwire."""
    trace = linear_trace(100)
    target_pc = int(trace.pc[40])
    spec = InstrumentSpec(triggers=(
        TraceTrigger(start_pc=target_pc, length=0, label="trip"),))
    _, recs = run_with(spec, trace)
    events = [r for r in recs if r["t"] == "window"]
    assert [e["event"] for e in events] == ["open", "close"]
    assert events[0]["pc"] == hex(target_pc)
    assert events[1]["records"] == 0
    assert not [r for r in recs if r["t"] == "trace"]


# -- edge case: overlapping windows ------------------------------------------


def test_overlapping_windows_each_capture_independently():
    trace = linear_trace(300)
    spec = InstrumentSpec(triggers=(
        TraceTrigger(start_cycle=0, length=50, label="a"),
        TraceTrigger(start_cycle=10, length=50, label="b"),
    ))
    _, recs = run_with(spec, trace)
    a = [r for r in recs if r["t"] == "trace" and r["window"] == "a"]
    b = [r for r in recs if r["t"] == "trace" and r["window"] == "b"]
    assert len(a) == 50 and len(b) == 50
    # both windows saw overlapping instruction ranges, tagged separately
    a_idx = {r["i"] for r in a}
    b_idx = {r["i"] for r in b}
    assert a_idx & b_idx, "expected the windows to overlap"


# -- stop conditions ----------------------------------------------------------


def test_stop_pc_closes_inclusively():
    trace = linear_trace(200)
    start, stop = int(trace.pc[20]), int(trace.pc[30])
    spec = InstrumentSpec(triggers=(
        TraceTrigger(start_pc=start, stop_pc=stop, label="w"),))
    _, recs = run_with(spec, trace)
    traced = [r for r in recs if r["t"] == "trace"]
    assert traced[0]["pc"] == hex(start)
    assert traced[-1]["pc"] == hex(stop)
    assert len(traced) == 11
    close = [r for r in recs if r["t"] == "window"
             and r["event"] == "close"][0]
    assert close["reason"] == "pc"


def test_stop_cycle_closes_window():
    trace = linear_trace(400)
    spec = InstrumentSpec(triggers=(
        TraceTrigger(start_cycle=0, stop_cycle=50, label="w"),))
    _, recs = run_with(spec, trace)
    close = [r for r in recs if r["t"] == "window"
             and r["event"] == "close"][0]
    assert close["reason"] == "cycle"
    traced = [r for r in recs if r["t"] == "trace"]
    assert traced, "window should have captured something"
    assert all(r["cycle"] <= close["cycle"] for r in traced)


def test_max_records_caps_an_unbounded_window():
    trace = linear_trace(500)
    spec = InstrumentSpec(triggers=(
        TraceTrigger(max_records=25, label="cap"),))
    _, recs = run_with(spec, trace)
    assert len([r for r in recs if r["t"] == "trace"]) == 25
    close = [r for r in recs if r["t"] == "window"
             and r["event"] == "close"][0]
    assert close["reason"] == "max-records"


def test_window_left_open_is_closed_at_seal():
    trace = linear_trace(50)
    spec = InstrumentSpec(triggers=(
        TraceTrigger(start_cycle=0, length=10_000, label="w"),))
    _, recs = run_with(spec, trace)
    close = [r for r in recs if r["t"] == "window"
             and r["event"] == "close"][0]
    assert close["reason"] == "eof"
    assert close["records"] == 50


def test_unmatched_start_pc_never_opens():
    trace = linear_trace(100)
    spec = InstrumentSpec(triggers=(
        TraceTrigger(start_pc=0xDEAD_0000, label="no"),))
    _, recs = run_with(spec, trace)
    assert not [r for r in recs if r["t"] in ("window", "trace")]


# -- markers ------------------------------------------------------------------


def test_marker_addr_round_trip():
    a = marker_addr(FIRST_USER_MARKER, 0xDEADBEEF)
    assert is_marker_addr(a)
    assert decode_marker(a) == (FIRST_USER_MARKER, 0xDEADBEEF)
    with pytest.raises(ValueError):
        marker_addr(1 << 16)
    with pytest.raises(ValueError):
        marker_addr(0, 1 << 32)
    with pytest.raises(ValueError):
        decode_marker(0x1234)


def test_markers_round_trip_through_a_run():
    tb = TraceBuilder()
    tb.region_begin(3)
    for _ in range(50):
        tb.alu(1, 2, 3)
    tb.marker(FIRST_USER_MARKER, 99)
    for _ in range(50):
        tb.alu(1, 2, 3)
    tb.region_end(3)
    trace = tb.build()
    _, recs = run_with(InstrumentSpec(), trace)
    markers = [r for r in recs if r["t"] == "marker"]
    assert [(m["id"], m["value"]) for m in markers] == [
        (1, 3), (FIRST_USER_MARKER, 99), (2, 3)]
    cycles = [m["cycle"] for m in markers]
    assert cycles == sorted(cycles)


def test_markers_can_be_disabled():
    tb = TraceBuilder()
    tb.marker(FIRST_USER_MARKER, 1)
    for _ in range(10):
        tb.alu(1, 2, 3)
    _, recs = run_with(InstrumentSpec(markers=False), tb.build())
    assert not [r for r in recs if r["t"] == "marker"]
