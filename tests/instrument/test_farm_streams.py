"""Farm-side streams: per-job JSONL files an operator can tail live."""

from __future__ import annotations

from repro.farm import Job, RunFarm
from repro.instrument import InstrumentSpec, read_stream, tail_stream
from repro.soc.presets import ROCKET1


def mm_job():
    return Job.kernel(ROCKET1, "MM", scale=0.05, seed=0, warmup=False)


def test_farm_writes_sealed_per_job_streams(tmp_path):
    spec = InstrumentSpec(counter_interval=5000)
    farm = RunFarm(workers=2, cache=None, instrument=spec,
                   instrument_dir=tmp_path)
    results = farm.run([mm_job()])
    assert results[0].status == "ok"

    stream = tmp_path / f"{mm_job().label}.jsonl"
    assert stream.exists()
    recs = read_stream(stream)
    assert recs[0]["t"] == "meta"
    assert recs[-1]["t"] == "seal"
    assert [r for r in recs if r["t"] == "counter"]


def test_instrumented_payload_matches_uninstrumented(tmp_path):
    """Observation must not leak into job payloads: the instrumented
    run's timing payload is identical to the bare one."""
    bare = RunFarm(workers=1, cache=None).run([mm_job()])[0]
    inst = RunFarm(workers=1, cache=None,
                   instrument=InstrumentSpec(counter_interval=5000),
                   instrument_dir=tmp_path).run([mm_job()])[0]
    bare_p = {k: v for k, v in bare.payload.items() if k != "meta"}
    inst_p = {k: v for k, v in inst.payload.items() if k != "meta"}
    assert bare_p == inst_p


def test_instrumented_sweep_bypasses_result_cache(tmp_path):
    """Cached payloads have no streams — instrumented sweeps must run."""
    cache_dir = tmp_path / "cache"
    instr_dir = tmp_path / "streams"
    instr_dir.mkdir()
    # prime the cache with a bare run
    RunFarm(workers=1, cache=cache_dir).run([mm_job()])
    farm = RunFarm(workers=1, cache=cache_dir,
                   instrument=InstrumentSpec(counter_interval=5000),
                   instrument_dir=instr_dir)
    result = farm.run([mm_job()])[0]
    assert not result.from_cache
    assert (instr_dir / f"{mm_job().label}.jsonl").exists()


def test_stream_is_tailable_after_the_run(tmp_path):
    spec = InstrumentSpec(counter_interval=5000)
    RunFarm(workers=1, cache=None, instrument=spec,
            instrument_dir=tmp_path).run([mm_job()])
    path = tmp_path / f"{mm_job().label}.jsonl"
    got = list(tail_stream(path, follow=True, poll_s=0.01, timeout_s=5.0))
    assert got[-1]["t"] == "seal"
