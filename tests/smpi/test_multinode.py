"""Multi-node runtime tests (the paper's §7 future-work capability)."""

import numpy as np
import pytest

from repro.isa.trace import TraceBuilder
from repro.smpi import (
    Comm,
    MultiNodeRuntime,
    ethernet_network,
    run_mpi,
    run_multinode,
)
from repro.soc import ROCKET1, System


def trace(n=200):
    b = TraceBuilder()
    for i in range(n):
        b.alu(5 + i % 8, 20, 21)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(n, dtype=np.uint64) % 64) * 4
    return t


def test_rank_placement():
    rt = MultiNodeRuntime([System(ROCKET1), System(ROCKET1)], ranks_per_node=4)
    assert rt.nranks == 8
    assert rt.node_of(0) == 0 and rt.node_of(3) == 0
    assert rt.node_of(4) == 1 and rt.node_of(7) == 1
    assert rt._tile_for(5) is rt.systems[1].tiles[1]


def test_validation():
    with pytest.raises(ValueError):
        MultiNodeRuntime([])
    with pytest.raises(ValueError):
        MultiNodeRuntime([System(ROCKET1)], ranks_per_node=9)


def test_eight_ranks_allreduce_across_two_nodes():
    def program(comm: Comm):
        total = yield from comm.allreduce(float(comm.rank))
        return total

    results = run_multinode(ROCKET1, nnodes=2, program=program)
    assert len(results) == 8
    expected = sum(range(8))
    for r in results:
        assert r.value == pytest.approx(expected)


def test_cross_node_messages_cost_more():
    payload = np.zeros(4096)

    def make(dst):
        def program(comm: Comm):
            if comm.rank == 0:
                yield from comm.send(dst, payload)
                return None
            if comm.rank == dst:
                yield from comm.recv(0)
            return None

        return program

    # intra-node: rank 0 -> 1; cross-node: rank 0 -> 4
    intra = run_multinode(ROCKET1, nnodes=2, program=make(1))
    cross = run_multinode(ROCKET1, nnodes=2, program=make(4))
    assert cross[4].comm_cycles > 3 * max(1, intra[1].comm_cycles)


def test_nodes_have_private_memory_systems():
    """8 DRAM-hungry ranks on two nodes beat 4 on one node's memory."""
    b = TraceBuilder()
    for i in range(1500):
        b.load(5 + i % 8, 0x100_0000 + i * 4096)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(len(t), dtype=np.uint64) % 64) * 4

    def program(comm: Comm):
        yield from comm.compute(t)
        return None

    single = run_mpi(System(ROCKET1), 4, program)
    multi = run_multinode(ROCKET1, nnodes=2, program=program,
                          ranks_per_node=2)
    # same 4-way contention split over two memory systems finishes sooner
    assert max(r.cycles for r in multi) < max(r.cycles for r in single)


def test_npb_ep_runs_on_eight_nodes_scaled():
    """The §7 goal: an eight-node run (2 ranks per node = 16 ranks)."""
    from repro.workloads.npb.ep import EP_CLASSES, ep_program, ep_reference

    def program(comm: Comm):
        return (yield from ep_program(comm, "S"))

    results = run_multinode(ROCKET1, nnodes=8, program=program,
                            ranks_per_node=2)
    assert len(results) == 16
    sx, sy, counts = ep_reference("S")
    for r in results:
        assert np.isclose(r.value[0], sx, rtol=1e-8)
