"""Tests of the simulated MPI runtime: semantics against numpy references,
timing sanity, deadlock detection."""

import numpy as np
import pytest

from repro.isa.trace import TraceBuilder
from repro.smpi import (
    Comm,
    DeadlockError,
    NetworkModel,
    SMPIRuntime,
    nbytes_of,
    run_mpi,
    shared_memory_network,
)
from repro.soc import ROCKET1, System


def small_trace(n=100):
    b = TraceBuilder()
    for i in range(n):
        b.alu(5 + i % 8, 20, 21)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(n, dtype=np.uint64) % 64) * 4
    return t


def make_runtime(nranks=4, **kw):
    return SMPIRuntime(System(ROCKET1), nranks, **kw)


# ------------------------------------------------------------ semantics

@pytest.mark.parametrize("nranks", [1, 2, 3, 4])
def test_allreduce_sum_matches_numpy(nranks):
    def program(comm: Comm):
        value = np.full(16, float(comm.rank + 1))
        total = yield from comm.allreduce(value)
        return total

    results = run_mpi(System(ROCKET1), nranks, program)
    expected = sum(range(1, nranks + 1))
    for r in results:
        assert np.allclose(r.value, expected)


@pytest.mark.parametrize("nranks", [2, 3, 4])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_everywhere(nranks, root):
    def program(comm: Comm):
        data = {"x": 42} if comm.rank == root else None
        data = yield from comm.bcast(data, root=root)
        return data

    for r in run_mpi(System(ROCKET1), nranks, program):
        assert r.value == {"x": 42}


@pytest.mark.parametrize("nranks", [2, 4])
def test_reduce_to_root(nranks):
    def program(comm: Comm):
        return (yield from comm.reduce(np.array([comm.rank + 1.0]), root=0))

    results = run_mpi(System(ROCKET1), nranks, program)
    assert np.allclose(results[0].value, sum(range(1, nranks + 1)))
    for r in results[1:]:
        assert r.value is None


@pytest.mark.parametrize("nranks", [2, 3, 4])
def test_allgather_order(nranks):
    def program(comm: Comm):
        return (yield from comm.allgather(comm.rank * 10))

    for r in run_mpi(System(ROCKET1), nranks, program):
        assert r.value == [i * 10 for i in range(nranks)]


@pytest.mark.parametrize("nranks", [2, 3, 4])
def test_alltoall_permutes(nranks):
    def program(comm: Comm):
        vals = [f"{comm.rank}->{j}" for j in range(comm.size)]
        return (yield from comm.alltoall(vals))

    results = run_mpi(System(ROCKET1), nranks, program)
    for j, r in enumerate(results):
        assert r.value == [f"{i}->{j}" for i in range(nranks)]


def test_point_to_point_payload():
    def program(comm: Comm):
        if comm.rank == 0:
            yield from comm.send(1, np.arange(10.0))
            return None
        return (yield from comm.recv(0))

    results = run_mpi(System(ROCKET1), 2, program)
    assert np.allclose(results[1].value, np.arange(10.0))


def test_sendrecv_crosses_payloads():
    def program(comm: Comm):
        other = yield from comm.sendrecv(1 - comm.rank, f"from{comm.rank}")
        return other

    results = run_mpi(System(ROCKET1), 2, program)
    assert results[0].value == "from1"
    assert results[1].value == "from0"


def test_barrier_synchronises_clocks():
    def program(comm: Comm):
        if comm.rank == 0:
            yield from comm.compute(small_trace(5000))  # rank 0 is slow
        yield from comm.barrier()
        return None

    results = run_mpi(System(ROCKET1), 4, program)
    clocks = [r.cycles for r in results]
    assert max(clocks) - min(clocks) < 0.2 * max(clocks)
    assert min(clocks) > 4000  # everyone waited for rank 0


def test_tag_separation():
    def program(comm: Comm):
        if comm.rank == 0:
            yield from comm.send(1, "tagged-5", tag=5)
            yield from comm.send(1, "tagged-6", tag=6)
            return None
        b = yield from comm.recv(0, tag=6)
        a = yield from comm.recv(0, tag=5)
        return (a, b)

    results = run_mpi(System(ROCKET1), 2, program)
    assert results[1].value == ("tagged-5", "tagged-6")


# ------------------------------------------------------------ timing

def test_compute_advances_clock():
    def program(comm: Comm):
        yield from comm.compute(small_trace(2000))
        return None

    r = run_mpi(System(ROCKET1), 1, program)[0]
    assert r.instructions == 2000
    assert r.cycles >= 2000
    assert r.compute_cycles > 0


def test_large_message_costs_more():
    def cost(nbytes):
        def program(comm: Comm):
            if comm.rank == 0:
                yield from comm.send(1, np.zeros(nbytes // 8), nbytes=nbytes)
                return None
            yield from comm.recv(0)
            return None

        rs = run_mpi(System(ROCKET1), 2, program)
        return rs[1].cycles

    assert cost(1 << 20) > cost(1 << 10) + 1000


def test_rendezvous_blocks_sender():
    net = NetworkModel(alpha_cycles=100, bytes_per_cycle=8, eager_limit=64)

    def program(comm: Comm):
        if comm.rank == 0:
            yield from comm.send(1, np.zeros(4096), nbytes=32768)
            return None
        yield from comm.compute(small_trace(9000))  # receiver is late
        yield from comm.recv(0)
        return None

    rs = run_mpi(System(ROCKET1), 2, program, network=net)
    # rendezvous: the sender's clock advanced to the transfer completion
    assert rs[0].cycles >= 8000
    assert rs[0].comm_cycles > 5000


def test_eager_send_returns_quickly():
    net = NetworkModel(alpha_cycles=100, bytes_per_cycle=8, eager_limit=1 << 20)

    def program(comm: Comm):
        if comm.rank == 0:
            yield from comm.send(1, b"x" * 1000)
            return None
        yield from comm.compute(small_trace(9000))
        yield from comm.recv(0)
        return None

    rs = run_mpi(System(ROCKET1), 2, program, network=net)
    assert rs[0].cycles < 2000  # sender did not wait for the receiver


def test_comm_cycles_counted():
    def program(comm: Comm):
        if comm.rank == 1:
            yield from comm.compute(small_trace(8000))
            yield from comm.send(0, b"late")
            return None
        yield from comm.recv(1)
        return None

    rs = run_mpi(System(ROCKET1), 2, program)
    assert rs[0].comm_cycles > 5000  # rank 0 waited for rank 1


# ------------------------------------------------------------ errors

def test_deadlock_detection():
    def program(comm: Comm):
        # everyone receives, nobody sends
        yield from comm.recv((comm.rank + 1) % comm.size)

    with pytest.raises(DeadlockError):
        run_mpi(System(ROCKET1), 2, program)


def test_too_many_ranks_rejected():
    with pytest.raises(ValueError):
        make_runtime(nranks=5)
    with pytest.raises(ValueError):
        make_runtime(nranks=0)


def test_comm_validation():
    with pytest.raises(ValueError):
        Comm(4, 4)


def test_nbytes_of():
    assert nbytes_of(np.zeros(10)) == 80
    assert nbytes_of(b"abc") == 3
    assert nbytes_of(1.5) == 8
    assert nbytes_of(None) == 0
    assert nbytes_of({"a": 1}) == 64


def test_network_presets_scale_with_clock():
    slow = shared_memory_network(1.6)
    fast = shared_memory_network(3.2)
    assert fast.alpha_cycles == pytest.approx(2 * slow.alpha_cycles, rel=0.01)


def test_message_stats():
    def program(comm: Comm):
        if comm.rank == 0:
            yield from comm.send(1, np.zeros(128))
            return None
        yield from comm.recv(0)
        return None

    rs = run_mpi(System(ROCKET1), 2, program)
    assert rs[0].messages_sent == 1
    assert rs[0].bytes_sent == 1024


def test_fifo_ordering_within_tag():
    """Two sends on the same (src, dst, tag) must arrive in order."""

    def program(comm: Comm):
        if comm.rank == 0:
            yield from comm.send(1, "first", tag=9)
            yield from comm.send(1, "second", tag=9)
            return None
        a = yield from comm.recv(0, tag=9)
        b = yield from comm.recv(0, tag=9)
        return (a, b)

    rs = run_mpi(System(ROCKET1), 2, program)
    assert rs[1].value == ("first", "second")


def test_many_outstanding_eager_messages():
    def program(comm: Comm):
        if comm.rank == 0:
            for i in range(20):
                yield from comm.send(1, i, tag=i)
            return None
        got = []
        for i in reversed(range(20)):  # receive in reverse tag order
            got.append((yield from comm.recv(0, tag=i)))
        return got

    rs = run_mpi(System(ROCKET1), 2, program)
    assert rs[1].value == list(reversed(range(20)))


def test_self_messaging_not_required_for_size_one():
    def program(comm: Comm):
        total = yield from comm.allreduce(5.0)
        out = yield from comm.allgather("x")
        yield from comm.barrier()
        return (total, out)

    r = run_mpi(System(ROCKET1), 1, program)[0]
    assert r.value == (5.0, ["x"])
