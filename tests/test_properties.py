"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.branch import BTB, BimodalBHT, ReturnAddressStack, TAGE
from repro.isa.encoding import Instr, decode, encode
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace, TraceBuilder
from repro.mem.cache import Cache, CacheConfig, MemoryPort
from repro.mem.dram import DRAM, DRAMConfig
from repro.mem.tlb import TLB, TLBConfig

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------- encoding

R_TYPE = ["add", "sub", "sll", "xor", "or", "and", "mul", "div", "remu",
          "addw", "sraw", "mulw"]
I_TYPE = ["addi", "slti", "xori", "andi", "addiw", "lw", "ld", "lbu", "jalr"]


@given(
    mnem=st.sampled_from(R_TYPE),
    rd=st.integers(0, 31), rs1=st.integers(0, 31), rs2=st.integers(0, 31),
)
def test_rtype_encode_decode_roundtrip(mnem, rd, rs1, rs2):
    ins = Instr(mnem, rd=rd, rs1=rs1, rs2=rs2)
    assert decode(encode(ins)) == ins


@given(
    mnem=st.sampled_from(I_TYPE),
    rd=st.integers(0, 31), rs1=st.integers(0, 31),
    imm=st.integers(-2048, 2047),
)
def test_itype_encode_decode_roundtrip(mnem, rd, rs1, imm):
    ins = Instr(mnem, rd=rd, rs1=rs1, imm=imm)
    assert decode(encode(ins)) == ins


@given(imm=st.integers(-2048, 2046).map(lambda v: v & ~1))
def test_branch_offset_roundtrip(imm):
    ins = Instr("bne", rs1=3, rs2=4, imm=imm)
    assert decode(encode(ins)) == ins


# ---------------------------------------------------------------- traces

@given(
    n=st.integers(1, 200),
    rep=st.integers(0, 4),
)
def test_trace_repeat_and_concat_lengths(n, rep):
    b = TraceBuilder()
    for i in range(n):
        b.alu(5, 6, 7)
    t = b.build()
    assert len(t.repeat(rep)) == n * rep
    assert len(Trace.concat([t, t])) == 2 * n


@given(
    ops=st.lists(
        st.sampled_from(["alu", "load", "store", "branch_t", "branch_n"]),
        min_size=1, max_size=300,
    )
)
def test_trace_stats_consistent(ops):
    b = TraceBuilder()
    for o in ops:
        if o == "alu":
            b.alu(5, 6, 7)
        elif o == "load":
            b.load(5, 0x1000)
        elif o == "store":
            b.store(5, 0x1000)
        elif o == "branch_t":
            b.branch(True, src1=5)
        else:
            b.branch(False, src1=5)
    t = b.build()
    s = t.stats()
    assert s.total == len(ops)
    assert s.loads == ops.count("load")
    assert s.stores == ops.count("store")
    assert s.branches == ops.count("branch_t") + ops.count("branch_n")
    assert s.taken_branches == ops.count("branch_t")
    assert abs(sum(s.mix().values()) - 1.0) < 1e-9


# ---------------------------------------------------------------- caches

@st.composite
def cache_and_accesses(draw):
    sets = draw(st.sampled_from([4, 16, 64]))
    ways = draw(st.integers(1, 8))
    addrs = draw(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    return sets, ways, addrs


@given(cache_and_accesses())
@SLOW
def test_cache_determinism_and_bounds(params):
    sets, ways, addrs = params

    def run():
        c = Cache(CacheConfig(sets=sets, ways=ways), MemoryPort(latency=50))
        t = 0
        finishes = []
        for a in addrs:
            f = c.access(a, t)
            assert f >= t + c.cfg.hit_latency  # time moves forward
            finishes.append(f)
            t = f + 1
        return finishes, c.stats.hits, c.stats.misses, c.resident_lines()

    r1, r2 = run(), run()
    assert r1 == r2                      # fully deterministic
    _, hits, misses, resident = r1
    assert hits + misses == len(addrs)
    assert resident <= sets * ways       # capacity bound
    assert misses >= len({a >> 6 for a in addrs}) >= 1 or ways == 0


@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
@SLOW
def test_cache_second_visit_hits_when_capacity_allows(addrs):
    """If the distinct-line working set fits, a second pass is all hits."""
    lines = {a >> 6 for a in addrs}
    c = Cache(CacheConfig(sets=64, ways=8), MemoryPort(latency=50))
    if len(lines) > 64 * 8 // 4:  # stay far from conflict territory
        return
    t = 0
    for a in addrs:
        t = c.access(a, t) + 1
    h0 = c.stats.hits
    for a in addrs:
        t = c.access(a, t) + 1
    assert c.stats.hits - h0 == len(addrs)


@given(st.lists(st.integers(0, 1 << 20), min_size=2, max_size=150))
@SLOW
def test_cache_contains_after_access(addrs):
    c = Cache(CacheConfig(sets=16, ways=4), MemoryPort())
    t = 0
    for a in addrs:
        t = c.access(a, t) + 1
        assert c.contains(a)  # most-recently-used line is always resident


# ---------------------------------------------------------------- DRAM

@given(
    st.lists(st.integers(0, 1 << 24), min_size=1, max_size=150),
    st.sampled_from([1, 2, 4]),
)
@SLOW
def test_dram_time_monotonic_and_bandwidth_bounded(addrs, channels):
    cfg = DRAMConfig(channels=channels)
    d = DRAM(cfg, core_ghz=2.0)
    finish = 0
    for a in addrs:
        f = d.access(a * 64, 0)
        assert f > 0
        finish = max(finish, f)
    seconds = finish / 2.0e9
    gbps = len(addrs) * 64 / seconds / 1e9
    assert gbps <= cfg.peak_bandwidth_gbps * 1.01  # can't beat the pins
    assert d.stats.row_hits + d.stats.row_misses == len(addrs)


@given(st.integers(1, 6), st.floats(0.5, 4.0))
def test_dram_idle_latency_scales_with_clock(channels, ghz):
    cfg = DRAMConfig(channels=channels)
    d1 = DRAM(cfg, core_ghz=1.0)
    dx = DRAM(cfg, core_ghz=ghz)
    assert dx.idle_latency_cycles == pytest.approx(ghz * d1.idle_latency_cycles)


# ---------------------------------------------------------------- TLB

@given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=200),
       st.sampled_from([4, 16, 32]))
@SLOW
def test_tlb_immediate_rehit(addrs, entries):
    t = TLB(TLBConfig(entries=entries))
    for a in addrs:
        t.lookup(a)
        assert t.lookup(a)  # just-inserted page must hit
    assert t.stats.misses <= len(addrs)


# ---------------------------------------------------------------- predictors

@given(st.lists(st.booleans(), min_size=1, max_size=400))
def test_bimodal_constant_stream_converges(outcomes):
    """On any stream, mispredicts <= total; on constant streams, at most
    a 2-step training prefix mispredicts."""
    p = BimodalBHT(64)
    wrong = 0
    for o in outcomes:
        if p.predict(0x44) != o:
            wrong += 1
        p.update(0x44, o)
    assert wrong <= len(outcomes)
    if len(set(outcomes)) == 1:
        assert wrong <= 2


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=100))
def test_btb_insert_then_lookup(pcs):
    btb = BTB(entries=64, assoc=4)
    for pc in pcs:
        btb.insert(pc * 4, pc * 4 + 0x100)
        assert btb.lookup(pc * 4) == pc * 4 + 0x100


@given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=64))
def test_ras_within_depth_is_exact(addrs):
    ras = ReturnAddressStack(depth=len(addrs))
    for a in addrs:
        ras.push(a)
    for a in reversed(addrs):
        assert ras.pop() == a


@given(st.lists(st.booleans(), min_size=20, max_size=300))
def test_tage_never_crashes_and_counts(outcomes):
    t = TAGE(num_tables=3, table_bits=6)
    wrong = 0
    for o in outcomes:
        if t.predict(0x80) != o:
            wrong += 1
        t.update(0x80, o)
    assert 0 <= wrong <= len(outcomes)
