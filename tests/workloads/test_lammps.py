"""LAMMPS-mini tests: neighbor lists vs brute force, force correctness,
NVE conservation, and the MPI workload."""

import numpy as np
import pytest

from repro.soc import MILKV_HW, MILKV_SIM, ROCKET1
from repro.workloads.lammps import (
    MDSystem,
    WCA_CUTOFF,
    chain_system,
    fene_forces,
    half_neighbor_list,
    kinetic_energy,
    lj_lattice,
    lj_forces,
    run_lammps,
    temperature,
)


def brute_force_pairs(pos, box, rc):
    n = len(pos)
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            d = pos[i] - pos[j]
            d -= box * np.round(d / box)
            if np.dot(d, d) < rc * rc:
                pairs.add((i, j))
    return pairs


# ------------------------------------------------------------ neighbor

def test_neighbor_list_matches_brute_force():
    rng = np.random.default_rng(0)
    box = 6.0
    pos = rng.uniform(0, box, size=(64, 3))
    rc = 1.5
    nl = half_neighbor_list(pos, box, rc, skin=0.0)
    got = {(min(a, b), max(a, b)) for a, b in zip(nl.i, nl.j)}
    expected = brute_force_pairs(pos, box, rc)
    assert expected <= got  # list may include extra pairs within cutoff+skin
    i, j, _ = nl.filter_within(pos, box, rc)
    filtered = {(min(a, b), max(a, b)) for a, b in zip(i, j)}
    assert filtered == expected


def test_neighbor_list_no_duplicates():
    rng = np.random.default_rng(1)
    pos = rng.uniform(0, 5.0, size=(128, 3))
    nl = half_neighbor_list(pos, 5.0, 1.2)
    keys = list(zip(np.minimum(nl.i, nl.j), np.maximum(nl.i, nl.j)))
    assert len(keys) == len(set(keys))
    assert not np.any(nl.i == nl.j)


# ------------------------------------------------------------ forces

def test_lj_two_atoms_at_minimum():
    # r = 2^(1/6) is the LJ minimum: force ~ 0, energy ~ -1 (unshifted)
    box = 20.0
    pos = np.array([[5.0, 5.0, 5.0], [5.0 + WCA_CUTOFF, 5.0, 5.0]])
    nl = half_neighbor_list(pos, box, 2.5)
    f, pe = lj_forces(pos, nl, box, rc=2.5, shift=False)
    assert np.allclose(f, 0.0, atol=1e-10)
    assert pe == pytest.approx(-1.0, abs=1e-10)


def test_lj_forces_newton_third_law():
    # jittered lattice (uniform-random placement creates overlaps whose
    # ~1e13 forces cancel only to fp precision, masking real asymmetries)
    pos, _, box = lj_lattice(108)
    rng = np.random.default_rng(3)
    pos = (pos + rng.uniform(-0.05, 0.05, pos.shape)) % box
    nl = half_neighbor_list(pos, box, 2.5)
    f, _ = lj_forces(pos, nl, box)
    assert np.allclose(f.sum(axis=0), 0.0, atol=1e-9)


def test_fene_restoring_force():
    box = 50.0
    pos = np.array([[10.0, 10, 10], [11.2, 10, 10]])  # stretched past 0.97
    bonds = np.array([[0, 1]])
    f, pe = fene_forces(pos, bonds, box)
    assert f[0, 0] > 0  # atom 0 pulled toward its partner at larger x
    assert f[1, 0] < 0
    assert pe > 0
    assert np.allclose(f.sum(axis=0), 0.0)


def test_fene_blows_up_past_r0():
    pos = np.array([[0.0, 0, 0], [1.6, 0, 0]])
    with pytest.raises(FloatingPointError):
        fene_forces(pos, np.array([[0, 1]]), box=50.0)


def test_setup_lattice_density():
    pos, vel, box = lj_lattice(256)
    assert len(pos) >= 256
    assert len(pos) / box**3 == pytest.approx(0.8442, rel=1e-6)
    assert np.allclose(vel.mean(axis=0), 0.0, atol=1e-12)


def test_chain_setup_bond_lengths_safe():
    pos, vel, bonds, box = chain_system(8, beads_per_chain=16, density=0.3)
    d = pos[bonds[:, 0]] - pos[bonds[:, 1]]
    d -= box * np.round(d / box)
    r = np.linalg.norm(d, axis=1)
    assert r.max() < 1.3   # well inside FENE r0 = 1.5
    assert r.min() > 0.7


# ------------------------------------------------------------ integration

def test_nve_energy_conservation_lj():
    pos, vel, box = lj_lattice(108, t0=1.0)
    md = MDSystem(pos, vel, box, style="lj")
    e0 = md.total_energy()
    for _ in range(20):
        md.step()
    drift = abs(md.total_energy() - e0) / abs(e0)
    assert drift < 0.01


def test_nve_energy_conservation_chain():
    pos, vel, bonds, box = chain_system(4, beads_per_chain=16, density=0.3)
    md = MDSystem(pos, vel, box, style="chain", bonds=bonds, dt=0.004)
    e0 = md.total_energy()
    for _ in range(20):
        md.step()
    assert abs(md.total_energy() - e0) / max(abs(e0), 1.0) < 0.02


def test_momentum_conserved():
    pos, vel, box = lj_lattice(108)
    md = MDSystem(pos, vel, box)
    for _ in range(10):
        md.step()
    assert np.allclose(md.momentum(), 0.0, atol=1e-9)


def test_temperature_positive():
    pos, vel, box = lj_lattice(108, t0=1.44)
    assert temperature(vel) == pytest.approx(1.44, rel=0.4)
    assert kinetic_energy(vel) > 0


def test_bad_style_rejected():
    pos, vel, box = lj_lattice(32)
    with pytest.raises(ValueError):
        MDSystem(pos, vel, box, style="eam")


# ------------------------------------------------------------ workload

@pytest.mark.parametrize("bench_name", ["lj", "chain"])
def test_run_lammps_verifies(bench_name):
    # (arg is not named "benchmark": pytest-benchmark reserves that fixture)
    r = run_lammps(ROCKET1, nranks=1, benchmark=bench_name,
                   natoms=128, steps=3)
    assert r.verified, r
    assert r.cycles > 0


@pytest.mark.parametrize("nranks", [2, 4])
def test_run_lammps_parallel(nranks):
    r = run_lammps(ROCKET1, nranks=nranks, benchmark="lj",
                   natoms=256, steps=3)
    assert r.verified
    assert len(r.ranks) == nranks


def test_lammps_scales_with_ranks():
    r1 = run_lammps(ROCKET1, nranks=1, benchmark="lj", natoms=500, steps=4)
    r4 = run_lammps(ROCKET1, nranks=4, benchmark="lj", natoms=500, steps=4)
    assert r4.cycles < r1.cycles


def test_lammps_hw_beats_sim():
    """Fig 6: MILK-V hardware outruns its FireSim model on LJ."""
    sim = run_lammps(MILKV_SIM, nranks=1, benchmark="lj", natoms=256, steps=3)
    hw = run_lammps(MILKV_HW, nranks=1, benchmark="lj", natoms=256, steps=3)
    assert hw.seconds < sim.seconds


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        run_lammps(ROCKET1, benchmark="eam")
