"""NPB tests: numerical verification against serial references, scaling
behaviour, and benchmark-characteristic signatures (class S/W keep them fast)."""

import numpy as np
import pytest

from repro.soc import ROCKET1, SMALL_BOOM
from repro.workloads.npb import (
    NPB_RUNNERS,
    cg_reference,
    ep_reference,
    is_reference_checksum,
    mg_reference,
    run_cg,
    run_ep,
    run_is,
    run_mg,
    run_npb,
)


# ------------------------------------------------------------ references

def test_ep_reference_deterministic():
    a = ep_reference("S")
    b = ep_reference("S")
    assert a[0] == b[0] and a[1] == b[1]
    assert np.array_equal(a[2], b[2])
    assert a[2].sum() > 0  # some pairs accepted


def test_cg_reference_reasonable():
    z = cg_reference("S")
    assert 20.0 < z < 21.5  # zeta = 20 + 1/(x.z) with SPD dominant diagonal


def test_mg_reference_converges():
    from repro.workloads.npb.mg import MG_CLASSES, _residual, _rhs, _vcycle

    n, iters, sweeps = MG_CLASSES["S"]
    f = _rhs(n)
    u0 = np.zeros((n, n, n))
    r0 = float(np.sqrt(np.mean(_residual(u0, f) ** 2)))
    rend = mg_reference("S")
    assert rend < 0.9 * r0  # V-cycles reduce the residual


def test_is_reference_checksum_stable():
    assert is_reference_checksum("S") == is_reference_checksum("S")


# ------------------------------------------------------- verified runs

@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_ep_verifies(nranks):
    r = run_ep(ROCKET1, nranks=nranks, cls="S")
    assert r.verified
    assert r.cycles > 0
    assert len(r.ranks) == nranks


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_cg_verifies(nranks):
    r = run_cg(ROCKET1, nranks=nranks, cls="S")
    assert r.verified


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_is_verifies(nranks):
    r = run_is(ROCKET1, nranks=nranks, cls="S")
    assert r.verified


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_mg_verifies(nranks):
    r = run_mg(ROCKET1, nranks=nranks, cls="S")
    assert r.verified


def test_run_npb_dispatch():
    r = run_npb("ep", ROCKET1, nranks=1, cls="S")
    assert r.benchmark == "EP"
    with pytest.raises(KeyError):
        run_npb("LU", ROCKET1)


def test_unknown_class_rejected():
    with pytest.raises(ValueError):
        run_ep(ROCKET1, cls="C")


# ------------------------------------------------------------ behaviour

def test_ep_scales_with_ranks():
    r1 = run_ep(ROCKET1, nranks=1, cls="W")
    r4 = run_ep(ROCKET1, nranks=4, cls="W")
    # embarrassingly parallel: near-linear scaling
    assert r4.cycles < 0.45 * r1.cycles


def test_mg_scales_but_sublinearly():
    r1 = run_mg(ROCKET1, nranks=1, cls="W")
    r4 = run_mg(ROCKET1, nranks=4, cls="W")
    assert r4.cycles < r1.cycles           # still faster
    speedup = r1.cycles / r4.cycles
    assert speedup < 4.2                   # and not super-linear


def test_ep_runs_on_boom():
    r = run_ep(SMALL_BOOM, nranks=1, cls="S")
    assert r.verified
    assert r.core_ghz == 2.0


def test_npb_result_metrics():
    r = run_ep(ROCKET1, nranks=2, cls="S")
    assert r.seconds > 0
    assert r.total_instructions > 0
    assert "EP.S" in repr(r)
