"""Tests of the MicroBench suite: inventory, trace shapes, and the
microarchitectural behaviours each kernel is supposed to expose."""

import numpy as np
import pytest

from repro.isa.opcodes import OpClass
from repro.soc import BANANA_PI_HW, BANANA_PI_SIM, ROCKET1
from repro.workloads.microbench import (
    all_kernels,
    categories,
    get_kernel,
    run_kernel,
    run_suite,
    runnable_kernels,
)

SCALE = 0.08  # keep unit tests fast; benches run at full scale


# ------------------------------------------------------------ inventory

def test_forty_kernels_registered():
    assert len(all_kernels()) == 40


def test_crm_excluded_from_runnable():
    names = {k.spec.name for k in runnable_kernels()}
    assert len(names) == 39
    assert "CRm" not in names


def test_categories_match_table1():
    cats = categories()
    assert len(cats["Control Flow"]) == 12
    assert len(cats["Data"]) == 5
    assert len(cats["Execution"]) == 5
    assert len(cats["Cache"]) == 16
    assert len(cats["Memory"]) == 2


def test_get_kernel_unknown():
    with pytest.raises(KeyError):
        get_kernel("XYZ")


def test_crm_build_raises():
    with pytest.raises(RuntimeError):
        get_kernel("CRm").build()
    with pytest.raises(RuntimeError):
        run_kernel(ROCKET1, "CRm")


@pytest.mark.parametrize("kernel", [k.spec.name for k in runnable_kernels()])
def test_kernel_builds_nonempty_trace(kernel):
    t = get_kernel(kernel).build(scale=SCALE)
    assert len(t) > 20
    assert len(t) < 200_000


def test_traces_deterministic():
    a = get_kernel("CCh").build(scale=SCALE, seed=3)
    b = get_kernel("CCh").build(scale=SCALE, seed=3)
    assert np.array_equal(a.op, b.op)
    assert np.array_equal(a.addr, b.addr)
    assert np.array_equal(a.taken, b.taken)


# ------------------------------------------------ behavioural signatures

def run(name, config=ROCKET1, scale=SCALE):
    return run_kernel(config, name, scale=scale)


def test_biased_beats_random_branches():
    cca = run("Cca")
    cch = run("CCh")
    # a 5-stage pipeline pays only ~3 cycles per flush, so the CPI gap is
    # modest; the mispredict counts are the discriminating signal
    assert cch.result.cpi > 1.15 * cca.result.cpi
    assert cch.result.mispredicts > 10 * max(1, cca.result.mispredicts)


def test_large_blocks_amortise_mispredicts():
    cch = run("CCh")
    ccl = run("CCl")
    assert ccl.result.cpi < cch.result.cpi


def test_switch_every_third_easier_than_every_time():
    cs1 = run("CS1")
    cs3 = run("CS3")
    assert cs3.result.cpi <= cs1.result.cpi


def test_deep_recursion_overflows_rocket_ras():
    crd = run("CRd", scale=0.3)
    assert crd.result.mispredicts > 50  # 6-deep RAS vs 1000-deep recursion


def test_mm_is_dram_bound():
    md = run("MD")     # L1-resident chase
    mm = run("MM")     # 128 MiB chase
    assert mm.result.cpi > 5 * md.result.cpi
    assert mm.result.l1d_misses > 0.9 * mm.result.instructions / 5


def test_ml2_between_md_and_mm():
    md = run("MD")
    ml2 = run("ML2")
    mm = run("MM")
    assert md.result.cpi < ml2.result.cpi < mm.result.cpi


def test_conflict_kernel_thrashes_64set_l1():
    mc = run("MC")
    mim = run("MIM")
    assert mc.result.l1d_misses > 5 * max(1, mim.result.l1d_misses)


def test_mim2_coalescing_cheaper_than_two_lines():
    mim2 = run("MIM2")
    # two loads per iteration but only one distinct line: miss count ~ MIM
    mim = run("MIM")
    assert mim2.result.l1d_misses < 1.5 * max(1, mim.result.l1d_misses)


def test_mip_misses_instruction_cache():
    mip = run("MIP")
    assert mip.result.l1i_misses > 0.2 * mip.result.instructions / 3


def test_em1_slower_than_ei():
    em1 = run("EM1")  # dependent multiply chain
    ei = run("EI")    # independent ALU
    assert em1.result.cpi > 2 * ei.result.cpi


def test_ef_fp_latency_bound_on_rocket():
    ef = run("EF")
    # 8 independent FMAs: single-issue in-order sustains ~1 IPC
    assert 0.8 < ef.result.cpi < 2.5


def test_dual_issue_k1_beats_rocket_on_execution():
    for name in ("EI", "ED1"):
        sim = run(name, BANANA_PI_SIM)
        hw = run(name, BANANA_PI_HW)
        rel = sim.seconds / hw.seconds
        # hardware should win (relative perf < 1), per paper Fig. 1
        assert hw.seconds < sim.seconds, name


def test_run_suite_subset():
    runs = run_suite(ROCKET1, scale=SCALE, kernels=["Cca", "EI"])
    assert set(runs) == {"Cca", "EI"}
    assert all(r.cycles > 0 for r in runs.values())


def test_kernelrun_metrics():
    r = run("EI")
    assert r.seconds > 0
    assert r.ops_per_second > 0
    assert r.config == "Rocket1"
