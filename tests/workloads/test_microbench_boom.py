"""MicroBench behaviour on the out-of-order (BOOM) models — the fig-2 side."""

import pytest

from repro.soc import LARGE_BOOM, MILKV_SIM, SMALL_BOOM
from repro.workloads.microbench import run_kernel

SCALE = 0.08


def run(name, config=LARGE_BOOM, scale=SCALE):
    return run_kernel(config, name, scale=scale)


def test_em5_exploits_ilp_better_than_em1():
    """Five interleaved multiply chains cover the 3-cycle multiplier on an
    OoO core; a single chain cannot."""
    em1 = run("EM1")
    em5 = run("EM5")
    assert em5.result.cpi < 0.7 * em1.result.cpi


def test_wide_boom_feeds_independent_alu():
    ei_small = run("EI", SMALL_BOOM)
    ei_large = run("EI", LARGE_BOOM)
    # decode 3 vs 1: the wide machine runs the 8-independent-op kernel
    # much faster
    assert ei_large.result.cpi < 0.5 * ei_small.result.cpi


def test_indirect_switch_flushes_ooo_pipeline():
    cs1 = run("CS1")
    cca = run("Cca")
    # every-iteration target changes cost the deep front end heavily
    assert cs1.result.cpi > 1.5 * cca.result.cpi
    assert cs1.result.mispredicts > 0.5 * cs1.result.instructions / 10


def test_deep_ras_handles_crd():
    """BOOM's 32-deep RAS still overflows on 1000-deep recursion, but far
    less than Rocket's 6-deep one."""
    from repro.soc import ROCKET1

    boom = run("CRd", LARGE_BOOM, scale=0.3)
    rocket = run("CRd", ROCKET1, scale=0.3)
    assert boom.result.mispredicts < rocket.result.mispredicts


def test_m_dyn_store_load_coupling():
    """M_Dyn's loads depend on just-stored data: the OoO window cannot
    reorder around them, so CPI stays well above the independent kernel."""
    mdyn = run("M_Dyn")
    mi = run("MI")
    assert mdyn.result.cpi > mi.result.cpi


def test_milkv_sim_llc_absorbs_mip():
    """MILKVSim (with the idealised LLC) runs MIP much faster than the
    LLC-less Large BOOM."""
    with_llc = run("MIP", MILKV_SIM, scale=0.7)
    without = run("MIP", LARGE_BOOM, scale=0.7)
    assert with_llc.seconds < 0.75 * without.seconds


def test_tage_learns_ccm_bias():
    ccm = run("CCm")
    assert ccm.result.mispredicts < 0.12 * ccm.result.branches
