"""UME tests: mesh connectivity invariants, kernel correctness, MPI runs."""

import numpy as np
import pytest

from repro.soc import BANANA_PI_HW, BANANA_PI_SIM, ROCKET1
from repro.workloads.ume import (
    build_box_mesh,
    face_areas,
    point_from_zone_gather,
    run_ume,
    zone_to_point_scatter,
)


@pytest.fixture(scope="module")
def mesh():
    return build_box_mesh(4)


# ------------------------------------------------------------ mesh

def test_entity_counts_match_formulas(mesh):
    n = 4
    c = mesh.entity_counts()
    assert c["zones"] == n**3
    assert c["points"] == (n + 1) ** 3
    assert c["faces"] == 3 * n * n * (n + 1)
    assert c["edges"] == 3 * n * (n + 1) ** 2
    assert c["corners"] == 8 * n**3


def test_paper_scaling_ratios(mesh):
    """Paper §3.2.3 counts per-zone incidences: about 8 corners, 12 edges,
    8 points, and 6 faces per zone (unique entities are shared between
    neighbouring zones, so the unique-entity ratios are lower)."""
    c = mesh.entity_counts()
    z = c["zones"]
    assert c["corners"] / z == 8            # corners are not shared
    assert mesh.zone_points.shape[1] == 8   # 8 points incident per zone
    assert mesh.zone_faces.shape[1] == 6    # 6 faces incident per zone
    # each hex has 12 edges; unique edges = 3n(n+1)^2 -> 3 per zone as n grows
    n = mesh.n
    assert c["edges"] == 3 * n * (n + 1) ** 2


def test_zone_points_are_valid(mesh):
    assert mesh.zone_points.min() >= 0
    assert mesh.zone_points.max() < mesh.npoints
    # all 8 corners of a zone are distinct
    for z in range(0, mesh.nzones, 7):
        assert len(set(mesh.zone_points[z])) == 8


def test_faces_shared_between_zones(mesh):
    counts = np.bincount(mesh.zone_faces.ravel(), minlength=mesh.nfaces)
    assert counts.max() == 2   # interior faces shared by exactly 2 zones
    assert counts.min() == 1   # boundary faces by 1
    assert (counts == 2).sum() == 3 * 4 * 4 * 3  # interior planes


def test_point_corner_csr_is_inverse(mesh):
    start, clist = mesh.point_corner_start, mesh.point_corner_list
    assert start[-1] == mesh.ncorners
    for p in range(0, mesh.npoints, 11):
        cs = clist[start[p]:start[p + 1]]
        assert np.all(mesh.corner_point[cs] == p)


def test_mesh_validation():
    with pytest.raises(ValueError):
        build_box_mesh(0)


# ------------------------------------------------------------ kernels

def test_scatter_equals_gather(mesh):
    rng = np.random.default_rng(5)
    zf = rng.random(mesh.nzones)
    s = zone_to_point_scatter(mesh, zf)
    g = point_from_zone_gather(mesh, zf)
    assert np.allclose(s, g)


def test_scatter_partition_sums_to_whole(mesh):
    rng = np.random.default_rng(6)
    zf = rng.random(mesh.nzones)
    whole = zone_to_point_scatter(mesh, zf)
    parts = sum(
        zone_to_point_scatter(mesh, zf, lo, hi)
        for lo, hi in [(0, 20), (20, 40), (40, mesh.nzones)]
    )
    assert np.allclose(whole, parts)


def test_face_areas_unit_mesh():
    m = build_box_mesh(3, jitter=0.0)
    areas = face_areas(m)
    assert np.allclose(areas, 1.0)  # unit lattice: every face is a unit square


def test_face_areas_jittered_differ():
    m = build_box_mesh(3, jitter=0.3, seed=2)
    areas = face_areas(m)
    assert areas.std() > 0.01


# ------------------------------------------------------------ workload

def test_run_ume_verifies():
    r = run_ume(ROCKET1, nranks=1, mesh_n=4)
    assert r.verified
    assert r.total_cycles > 0
    assert set(r.kernel_cycles) == {"original", "inverted", "face_area"}


@pytest.mark.parametrize("nranks", [2, 4])
def test_run_ume_parallel(nranks):
    r = run_ume(ROCKET1, nranks=nranks, mesh_n=4)
    assert r.verified
    assert len(r.ranks) == nranks


def test_ume_scales_with_ranks():
    r1 = run_ume(ROCKET1, nranks=1, mesh_n=6)
    r4 = run_ume(ROCKET1, nranks=4, mesh_n=6)
    assert r4.total_cycles < r1.total_cycles


def test_ume_hw_faster_than_sim():
    """Fig 5: the Banana Pi beats its Rocket-based sim model on UME."""
    sim = run_ume(BANANA_PI_SIM, nranks=1, mesh_n=6)
    hw = run_ume(BANANA_PI_HW, nranks=1, mesh_n=6)
    assert hw.seconds < sim.seconds


def test_kernel_seconds_sum():
    r = run_ume(ROCKET1, nranks=1, mesh_n=4)
    total = sum(r.kernel_seconds(k) for k in r.kernel_cycles)
    assert total == pytest.approx(r.seconds)


# ------------------------------------------------------ adjacency graph

def test_zone_adjacency_structure(mesh):
    import networkx as nx

    g = mesh.zone_adjacency()
    assert g.number_of_nodes() == mesh.nzones
    assert nx.is_connected(g)
    degrees = [d for _, d in g.degree()]
    assert max(degrees) == 6          # interior zones touch 6 neighbours
    assert min(degrees) == 3          # corner zones touch 3
    # handshake check: total edges = interior faces
    interior_faces = 3 * 4 * 4 * 3    # n=4
    assert g.number_of_edges() == interior_faces


def test_partition_edge_cut_slabs_vs_random(mesh):
    n = mesh.nzones
    # contiguous slab partition (what the workload uses): small cut
    slabs = np.arange(n) * 4 // n
    # random assignment: pathological cut (~3/4 of all edges)
    rng = np.random.default_rng(0)
    random_owner = rng.integers(0, 4, size=n)
    slab_cut = mesh.partition_edge_cut(slabs)
    rand_cut = mesh.partition_edge_cut(random_owner)
    assert slab_cut < rand_cut
    # slabs cut exactly the 3 interior planes of 16 pairs each (n=4)
    assert slab_cut == 3 * 16
    assert mesh.partition_edge_cut(np.zeros(n, dtype=int)) == 0
