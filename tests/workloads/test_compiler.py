"""Tests for the GCC-version trace transformation (paper Table 3)."""

import numpy as np
import pytest

from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.soc import ROCKET1, System
from repro.workloads.compiler import GCC_9_4, GCC_13_2, GccModel, apply_compiler


def base_trace(n=2000):
    b = TraceBuilder()
    for i in range(n):
        b.alu(5 + i % 8, 20, 21)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(n, dtype=np.uint64) % 64) * 4
    return t


def test_gcc13_is_identity():
    t = base_trace()
    assert GCC_13_2.transform(t) is t
    assert GCC_13_2.overhead == 1.0


def test_gcc94_inflates_dynamic_count():
    t = base_trace()
    out = apply_compiler(t, GCC_9_4)
    assert len(out) > len(t)
    # inflation near the model's expected overhead (4% + 2x1%)
    assert len(out) / len(t) == pytest.approx(GCC_9_4.overhead, rel=0.25)


def test_original_ops_preserved_in_order():
    t = base_trace(500)
    out = apply_compiler(t, GCC_9_4)
    # the subsequence of original (non-inserted) ops is intact: count ALU
    # ops writing the original destination registers
    orig_dsts = t.dst[t.dst >= 5]
    out_dsts = out.dst[(out.dst >= 5) & (out.dst != 28)]
    assert np.array_equal(orig_dsts, out_dsts)


def test_transform_deterministic():
    t = base_trace(800)
    a = apply_compiler(t, GCC_9_4, seed=7)
    b = apply_compiler(t, GCC_9_4, seed=7)
    assert np.array_equal(a.op, b.op)
    assert np.array_equal(a.addr, b.addr)
    c = apply_compiler(t, GCC_9_4, seed=8)
    assert not np.array_equal(a.op, c.op)


def test_inserted_spills_hit_the_stack():
    t = base_trace(3000)
    out = apply_compiler(t, GCC_9_4)
    stores = out.addr[out.op == int(OpClass.STORE)]
    assert len(stores) > 0
    assert np.all(stores >= 0x7F00_0000)


def test_old_compiler_costs_cycles():
    t = base_trace(4000)
    old = apply_compiler(t, GCC_9_4)
    sys_new, sys_old = System(ROCKET1), System(ROCKET1)
    sys_new.run(t)
    sys_old.run(old)
    r_new = sys_new.run(t)
    r_old = sys_old.run(old)
    assert r_old.cycles > r_new.cycles


def test_rate_validation():
    with pytest.raises(ValueError):
        GccModel(name="bad", redundant_rate=1.5)
    with pytest.raises(ValueError):
        GccModel(name="bad", spill_rate=-0.1)
