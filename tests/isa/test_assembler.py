"""Assembler tests: labels, pseudo-ops, operands, and error paths."""

import pytest

from repro.isa import Interpreter, assemble, decode
from repro.isa.assembler import FREG_NAMES, REG_NAMES, AssemblerError


def test_abi_register_names_complete():
    assert REG_NAMES["zero"] == 0
    assert REG_NAMES["ra"] == 1
    assert REG_NAMES["sp"] == 2
    assert REG_NAMES["t0"] == 5
    assert REG_NAMES["t3"] == 28
    assert REG_NAMES["s0"] == 8
    assert REG_NAMES["s11"] == 27
    assert REG_NAMES["a7"] == 17
    assert FREG_NAMES["ft0"] == 0
    assert FREG_NAMES["ft8"] == 28
    assert FREG_NAMES["fs0"] == 8
    assert FREG_NAMES["fa7"] == 17


def test_labels_forward_and_backward():
    words = assemble(
        """
        start:
            addi a0, x0, 1
            beqz a0, start      # backward
            bnez a0, end        # forward
            addi a0, a0, 100
        end:
            addi a0, a0, 10
        """
    )
    interp = Interpreter(words)
    interp.run()
    assert interp.reg("a0") == 11  # skipped the +100


def test_label_on_its_own_line_and_inline():
    w1 = assemble("loop:\n  j loop")
    w2 = assemble("loop: j loop")
    assert w1 == w2


def test_comments_both_styles():
    words = assemble("addi a0, x0, 1  # hash comment\naddi a1, x0, 2 ; semi")
    assert len(words) == 2


def test_li_expansion():
    assert len(assemble("li a0, 100")) == 1      # fits addi
    assert len(assemble("li a0, 100000")) == 2   # lui + addi
    interp = Interpreter(assemble("li a0, 123456\nli a1, -98765"))
    interp.run()
    assert interp.reg("a0") == 123456
    assert interp.reg("a1") == -98765


@pytest.mark.parametrize("pseudo,check", [
    ("mv a0, a1", "addi"),
    ("nop", "addi"),
    ("neg a0, a1", "sub"),
    ("not a0, a1", "xori"),
    ("seqz a0, a1", "sltiu"),
    ("snez a0, a1", "sltu"),
    ("fmv.d fa0, fa1", "fsgnj.d"),
    ("fneg.d fa0, fa1", "fsgnjn.d"),
    ("fabs.d fa0, fa1", "fsgnjx.d"),
])
def test_pseudo_lowering(pseudo, check):
    words = assemble(pseudo)
    assert decode(words[0]).mnemonic == check


def test_pseudo_semantics():
    interp = Interpreter(assemble(
        """
        li a1, -7
        neg a2, a1
        not a3, x0
        seqz a4, x0
        snez a5, a1
        """
    ))
    interp.run()
    assert interp.reg("a2") == 7
    assert interp.reg("a3") == -1
    assert interp.reg("a4") == 1
    assert interp.reg("a5") == 1


def test_memory_operand_spacing_tolerated():
    w1 = assemble("ld a0, 8(sp)")
    w2 = assemble("ld a0, 8( sp )")
    assert w1 == w2


def test_error_unknown_mnemonic():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frobnicate a0, a1")


def test_error_unknown_register():
    with pytest.raises(AssemblerError, match="unknown register"):
        assemble("add a0, a1, q7")


def test_error_unknown_label():
    with pytest.raises(AssemblerError, match="unknown label"):
        assemble("j nowhere")


def test_error_duplicate_label():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("x: nop\nx: nop")


def test_error_bad_memory_operand():
    with pytest.raises(AssemblerError, match="memory operand"):
        assemble("ld a0, [sp+8]")


def test_error_reports_line_number():
    with pytest.raises(AssemblerError, match="line 3"):
        assemble("nop\nnop\nbadop a0")


def test_error_li_out_of_range():
    with pytest.raises(AssemblerError):
        assemble("li a0, 99999999999999")


def test_fp_register_in_integer_slot_rejected():
    with pytest.raises(AssemblerError):
        assemble("add fa0, a1, a2")
