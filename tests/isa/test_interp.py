"""Functional tests of the RV64IM interpreter and its trace emission."""

import numpy as np
import pytest

from repro.isa import Interpreter, OpClass, assemble
from repro.isa.interp import ExecutionError


def run(src, max_instructions=100_000, **kwargs):
    interp = Interpreter(assemble(src), **kwargs)
    trace = interp.run(max_instructions=max_instructions)
    return interp, trace


def test_basic_arithmetic():
    interp, _ = run(
        """
        li a0, 7
        li a1, 5
        add a2, a0, a1
        sub a3, a0, a1
        mul a4, a0, a1
        div a5, a0, a1
        rem a6, a0, a1
        """
    )
    assert interp.reg("a2") == 12
    assert interp.reg("a3") == 2
    assert interp.reg("a4") == 35
    assert interp.reg("a5") == 1
    assert interp.reg("a6") == 2


def test_negative_and_64bit():
    interp, _ = run(
        """
        li a0, -10
        li a1, 3
        div a2, a0, a1
        rem a3, a0, a1
        sra a4, a0, a1
        srl a5, a0, a1
        """
    )
    assert interp.reg("a2") == -3   # RISC-V truncates toward zero
    assert interp.reg("a3") == -1
    assert interp.reg("a4") == -10 >> 3
    assert interp.reg("a5") == ((-10) & ((1 << 64) - 1)) >> 3


def test_div_by_zero_semantics():
    interp, _ = run(
        """
        li a0, 42
        li a1, 0
        div a2, a0, a1
        rem a3, a0, a1
        divu a4, a0, a1
        """
    )
    assert interp.reg("a2") == -1
    assert interp.reg("a3") == 42
    assert interp.reg("a4") == -1  # all ones


def test_word_ops_sign_extend():
    interp, _ = run(
        """
        li a0, 0x7fffffff
        addiw a1, a0, 1
        """
    )
    assert interp.reg("a1") == -(1 << 31)


def test_memory_roundtrip():
    interp, trace = run(
        """
        li a0, 0x1000
        li a1, -123
        sd a1, 0(a0)
        ld a2, 0(a0)
        lw a3, 0(a0)
        lbu a4, 0(a0)
        """
    )
    assert interp.reg("a2") == -123
    assert interp.reg("a3") == -123
    assert interp.reg("a4") == (-123) & 0xFF
    stats = trace.stats()
    assert stats.loads == 3
    assert stats.stores == 1


def test_loop_sum():
    # sum 1..100 with a countdown loop
    interp, trace = run(
        """
            li a0, 0
            li a1, 100
        loop:
            add a0, a0, a1
            addi a1, a1, -1
            bnez a1, loop
        """
    )
    assert interp.reg("a0") == 5050
    st = trace.stats()
    assert st.branches == 100
    assert st.taken_branches == 99


def test_call_ret_trace_classes():
    interp, trace = run(
        """
            li a0, 5
            call double
            j end
        double:
            add a0, a0, a0
            ret
        end:
            addi a1, a0, 0
        """
    )
    assert interp.reg("a0") == 10
    assert interp.reg("a1") == 10
    ops = list(trace.op)
    assert int(OpClass.CALL) in ops
    assert int(OpClass.RET) in ops


def test_x0_is_hardwired_zero():
    interp, _ = run("addi x0, x0, 5\naddi a0, x0, 1")
    assert interp.reg(0) == 0
    assert interp.reg("a0") == 1


def test_fuel_exhaustion():
    with pytest.raises(ExecutionError):
        run("loop: j loop", max_instructions=100)


def test_ecall_halts():
    interp, _ = run("li a0, 1\necall\nli a0, 2")
    assert interp.reg("a0") == 1
    assert interp.halted


def test_trace_pcs_are_sequential_within_straightline():
    _, trace = run("addi a0, x0, 1\naddi a1, x0, 2\naddi a2, x0, 3")
    assert list(np.diff(trace.pc.astype(np.int64))) == [4, 4]


def test_fibonacci_recursive():
    # fib(10) = 55 via naive recursion, exercising the stack
    interp, trace = run(
        """
            li sp, 0x8000
            li a0, 10
            call fib
            j end
        fib:
            li t0, 2
            blt a0, t0, base
            addi sp, sp, -16
            sd ra, 8(sp)
            sd a0, 0(sp)
            addi a0, a0, -1
            call fib
            ld t1, 0(sp)
            sd a0, 0(sp)
            addi a0, t1, -2
            call fib
            ld t1, 0(sp)
            add a0, a0, t1
            ld ra, 8(sp)
            addi sp, sp, 16
        base:
            ret
        end:
            addi zero, zero, 0
        """
    )
    assert interp.reg("a0") == 55
    st = trace.stats()
    assert st.total > 100  # real recursion happened


def test_mulh_against_python():
    interp, _ = run(
        """
        li a0, 0x7ff
        slli a0, a0, 52
        li a1, 0x123
        slli a1, a1, 40
        mulh a2, a0, a1
        mulhu a3, a0, a1
        """
    )
    a0 = 0x7FF << 52
    a0s = a0 - (1 << 64) if a0 >> 63 else a0
    a1 = 0x123 << 40
    assert interp.reg("a2") == (a0s * a1) >> 64
    assert interp.reg("a3") == ((a0 & ((1 << 64) - 1)) * a1) >> 64
