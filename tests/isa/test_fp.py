"""Tests for the F/D floating-point extension: encoding roundtrips,
IEEE semantics, NaN handling, and trace emission."""

import math
import struct

import numpy as np
import pytest

from repro.isa import Interpreter, OpClass, assemble
from repro.isa.encoding import Instr, decode, encode
from repro.isa.trace import FP_REG_BASE


def run(src):
    interp = Interpreter(assemble(src))
    trace = interp.run()
    return interp, trace


# ------------------------------------------------------------ encoding

FP_INSTRS = [
    Instr("fld", rd=1, rs1=10, imm=16),
    Instr("flw", rd=1, rs1=10, imm=-4),
    Instr("fsd", rs1=10, rs2=2, imm=-8),
    Instr("fsw", rs1=10, rs2=2, imm=0),
    Instr("fadd.d", rd=3, rs1=4, rs2=5),
    Instr("fsub.d", rd=3, rs1=4, rs2=5),
    Instr("fmul.d", rd=3, rs1=4, rs2=5),
    Instr("fdiv.d", rd=3, rs1=4, rs2=5),
    Instr("fsqrt.d", rd=3, rs1=4),
    Instr("fmin.d", rd=1, rs1=2, rs2=3),
    Instr("fmax.d", rd=1, rs1=2, rs2=3),
    Instr("fsgnj.d", rd=1, rs1=2, rs2=3),
    Instr("fsgnjn.d", rd=1, rs1=2, rs2=3),
    Instr("fsgnjx.d", rd=1, rs1=2, rs2=3),
    Instr("feq.d", rd=7, rs1=2, rs2=3),
    Instr("flt.d", rd=7, rs1=2, rs2=3),
    Instr("fle.d", rd=7, rs1=2, rs2=3),
    Instr("fcvt.w.d", rd=7, rs1=2),
    Instr("fcvt.l.d", rd=7, rs1=2),
    Instr("fcvt.d.w", rd=7, rs1=2),
    Instr("fcvt.d.l", rd=7, rs1=2),
    Instr("fcvt.s.d", rd=7, rs1=2),
    Instr("fcvt.d.s", rd=7, rs1=2),
    Instr("fmv.x.d", rd=7, rs1=2),
    Instr("fmv.d.x", rd=7, rs1=2),
    Instr("fadd.s", rd=3, rs1=4, rs2=5),
    Instr("fmadd.d", rd=1, rs1=2, rs2=3, rs3=4),
    Instr("fmsub.d", rd=1, rs1=2, rs2=3, rs3=4),
    Instr("fnmsub.d", rd=1, rs1=2, rs2=3, rs3=4),
    Instr("fnmadd.d", rd=1, rs1=2, rs2=3, rs3=4),
]


@pytest.mark.parametrize("ins", FP_INSTRS, ids=lambda i: str(i))
def test_fp_roundtrip(ins):
    assert decode(encode(ins)) == ins


def test_known_fp_encodings():
    # cross-checked with riscv-gnu-toolchain output
    assert encode(Instr("fld", rd=1, rs1=10, imm=16)) == 0x01053087
    assert encode(Instr("fadd.d", rd=3, rs1=4, rs2=5)) == 0x025201D3


def test_fp_op_classes():
    assert Instr("fadd.d", rd=1, rs1=2, rs2=3).op_class == OpClass.FP_ADD
    assert Instr("fmul.d", rd=1, rs1=2, rs2=3).op_class == OpClass.FP_MUL
    assert Instr("fdiv.d", rd=1, rs1=2, rs2=3).op_class == OpClass.FP_DIV
    assert Instr("fsqrt.d", rd=1, rs1=2).op_class == OpClass.FP_SQRT
    assert Instr("fmadd.d", rd=1, rs1=2, rs2=3, rs3=4).op_class == OpClass.FP_FMA
    assert Instr("fcvt.w.d", rd=1, rs1=2).op_class == OpClass.FP_CVT
    assert Instr("fsgnj.d", rd=1, rs1=2, rs2=3).op_class == OpClass.FP_MOV
    assert Instr("fld", rd=1, rs1=2).op_class == OpClass.LOAD
    assert Instr("fsd", rs1=2, rs2=3).op_class == OpClass.STORE


# ------------------------------------------------------------ semantics

def test_basic_double_arithmetic():
    interp, _ = run("""
        li t0, 7
        fcvt.d.l fa0, t0
        li t0, 2
        fcvt.d.l fa1, t0
        fadd.d fa2, fa0, fa1
        fsub.d fa3, fa0, fa1
        fmul.d fa4, fa0, fa1
        fdiv.d fa5, fa0, fa1
    """)
    assert interp.freg("fa2") == 9.0
    assert interp.freg("fa3") == 5.0
    assert interp.freg("fa4") == 14.0
    assert interp.freg("fa5") == 3.5


def test_division_by_zero_gives_inf():
    interp, _ = run("""
        li t0, 1
        fcvt.d.l fa0, t0
        fcvt.d.l fa1, x0
        fdiv.d fa2, fa0, fa1
        fdiv.d fa3, fa1, fa1
    """)
    assert math.isinf(interp.freg("fa2"))
    assert math.isnan(interp.freg("fa3"))


def test_sqrt_of_negative_is_nan():
    interp, _ = run("""
        li t0, -4
        fcvt.d.l fa0, t0
        fsqrt.d fa1, fa0
    """)
    assert math.isnan(interp.freg("fa1"))


def test_comparisons_with_nan_are_false():
    interp, _ = run("""
        li t0, 1
        fcvt.d.l fa0, t0
        fcvt.d.l fa1, x0
        fdiv.d fa2, fa1, fa1      # NaN
        feq.d t1, fa2, fa2
        flt.d t2, fa2, fa0
        fle.d t3, fa0, fa0
    """)
    assert interp.reg("t1") == 0
    assert interp.reg("t2") == 0
    assert interp.reg("t3") == 1


def test_min_max_nan_returns_other():
    interp, _ = run("""
        li t0, 5
        fcvt.d.l fa0, t0
        fcvt.d.l fa1, x0
        fdiv.d fa2, fa1, fa1      # NaN
        fmin.d fa3, fa2, fa0
        fmax.d fa4, fa0, fa2
    """)
    assert interp.freg("fa3") == 5.0
    assert interp.freg("fa4") == 5.0


def test_memory_roundtrip_single_and_double():
    interp, _ = run("""
        li a0, 0x2000
        li t0, 3
        fcvt.d.l fa0, t0
        fsd fa0, 0(a0)
        fld fa1, 0(a0)
        fcvt.s.d fa2, fa0
        fsw fa2, 8(a0)
        flw fa3, 8(a0)
    """)
    assert interp.freg("fa1") == 3.0
    assert interp.freg("fa3") == 3.0


def test_single_precision_rounds():
    interp, _ = run("""
        li t0, 16777217          # 2^24 + 1: not representable in f32
        fcvt.d.l fa0, t0
        fcvt.s.d fa1, fa0
    """)
    assert interp.freg("fa0") == 16777217.0
    assert interp.freg("fa1") == 16777216.0  # rounded


def test_fmv_bit_pattern():
    interp, _ = run("""
        li t0, 1
        fcvt.d.l fa0, t0
        fmv.x.d t1, fa0
        fmv.d.x fa1, t1
    """)
    assert interp.reg("t1") == struct.unpack("<q", struct.pack("<d", 1.0))[0]
    assert interp.freg("fa1") == 1.0


def test_fcvt_truncates_toward_zero():
    interp, _ = run("""
        li t0, 7
        fcvt.d.l fa0, t0
        li t0, 2
        fcvt.d.l fa1, t0
        fdiv.d fa2, fa0, fa1      # 3.5
        fcvt.l.d t1, fa2
        fneg.d fa3, fa2
        fcvt.l.d t2, fa3
    """)
    assert interp.reg("t1") == 3
    assert interp.reg("t2") == -3


def test_fma_variants():
    interp, _ = run("""
        li t0, 2
        fcvt.d.l fa0, t0
        li t0, 3
        fcvt.d.l fa1, t0
        li t0, 10
        fcvt.d.l fa2, t0
        fmadd.d fa3, fa0, fa1, fa2    # 2*3+10 = 16
        fmsub.d fa4, fa0, fa1, fa2    # 2*3-10 = -4
        fnmsub.d fa5, fa0, fa1, fa2   # -(2*3)+10 = 4
        fnmadd.d fa6, fa0, fa1, fa2   # -(2*3)-10 = -16
    """)
    assert interp.freg("fa3") == 16.0
    assert interp.freg("fa4") == -4.0
    assert interp.freg("fa5") == 4.0
    assert interp.freg("fa6") == -16.0


def test_dot_product_program():
    """A real FP kernel: dot product of two 8-element vectors in memory."""
    setup = []
    a = [1.5, -2.0, 3.25, 0.5, 4.0, -1.25, 2.0, 0.75]
    b = [2.0, 1.0, -1.0, 4.0, 0.5, 2.5, -3.0, 8.0]
    expected = sum(x * y for x, y in zip(a, b))
    prog = """
        li a0, 0x3000
        li a1, 0x3100
        li a2, 8
        fcvt.d.l fa0, x0          # acc = 0
    loop:
        fld fa1, 0(a0)
        fld fa2, 0(a1)
        fmadd.d fa0, fa1, fa2, fa0
        addi a0, a0, 8
        addi a1, a1, 8
        addi a2, a2, -1
        bnez a2, loop
        ecall
    """
    interp = Interpreter(assemble(prog))
    for i, (x, y) in enumerate(zip(a, b)):
        interp.mem.store(0x3000 + 8 * i,
                         struct.unpack("<Q", struct.pack("<d", x))[0], 8)
        interp.mem.store(0x3100 + 8 * i,
                         struct.unpack("<Q", struct.pack("<d", y))[0], 8)
    trace = interp.run()
    assert interp.freg("fa0") == pytest.approx(expected)
    # trace has FP loads into the FP register file and FMA ops
    fp_loads = np.count_nonzero(
        (trace.op == int(OpClass.LOAD)) & (trace.dst >= FP_REG_BASE))
    assert fp_loads == 16
    assert np.count_nonzero(trace.op == int(OpClass.FP_FMA)) == 8


def test_fp_trace_runs_on_timing_model():
    """FP traces from real code drive the core models end to end."""
    from repro.soc import MILKV_SIM, System

    _, trace = run("""
        li t0, 9
        fcvt.d.l fa0, t0
        fsqrt.d fa1, fa0
        fmul.d fa2, fa1, fa1
        fdiv.d fa3, fa2, fa0
    """)
    r = System(MILKV_SIM).run(trace)
    assert r.instructions == len(trace)
    assert r.cycles > 10  # sqrt + dependent chain cost real cycles
