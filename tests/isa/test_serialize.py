"""Trace save/load tests."""

import numpy as np
import pytest

from repro.isa.serialize import load_trace, save_trace
from repro.workloads.microbench import get_kernel


def test_roundtrip(tmp_path):
    t = get_kernel("CCh").build(scale=0.05, seed=3)
    path = tmp_path / "cch.npz"
    save_trace(t, path)
    back = load_trace(path)
    assert len(back) == len(t)
    for f in ("op", "dst", "src1", "src2", "addr", "size", "taken", "pc",
              "target"):
        assert np.array_equal(getattr(back, f), getattr(t, f)), f


def test_loaded_trace_times_identically(tmp_path):
    from repro.soc import ROCKET1, System

    t = get_kernel("MD").build(scale=0.05)
    path = tmp_path / "md.npz"
    save_trace(t, path)
    back = load_trace(path)
    c1 = System(ROCKET1).run(t).cycles
    c2 = System(ROCKET1).run(back).cycles
    assert c1 == c2


def test_bad_version_rejected(tmp_path):
    import numpy as np

    path = tmp_path / "bad.npz"
    np.savez(path, __version__=np.int64(99))
    with pytest.raises(ValueError):
        load_trace(path)


def test_missing_fields_rejected(tmp_path):
    path = tmp_path / "partial.npz"
    np.savez(path, __version__=np.int64(1), op=np.zeros(3, np.uint8))
    with pytest.raises(ValueError):
        load_trace(path)
