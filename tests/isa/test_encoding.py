"""Encode/decode round-trip and spot checks against known RV64 encodings."""

import pytest

from repro.isa.encoding import DecodeError, Instr, decode, encode
from repro.isa.opcodes import OpClass


# Known-good words cross-checked against the RISC-V spec examples.
KNOWN = [
    (Instr("add", rd=1, rs1=2, rs2=3), 0x003100B3),
    (Instr("addi", rd=1, rs1=2, imm=-1), 0xFFF10093),
    (Instr("lw", rd=5, rs1=10, imm=16), 0x01052283),
    (Instr("sd", rs1=2, rs2=8, imm=8), 0x00813423),
    (Instr("beq", rs1=1, rs2=2, imm=-4), 0xFE208EE3),
    (Instr("jal", rd=1, imm=2048), 0x001000EF),
    (Instr("lui", rd=7, imm=0x12345), 0x123453B7),
    (Instr("mul", rd=4, rs1=5, rs2=6), 0x02628233),
]


@pytest.mark.parametrize("ins,word", KNOWN)
def test_known_encodings(ins, word):
    assert encode(ins) == word


@pytest.mark.parametrize("ins,word", KNOWN)
def test_known_decodings(ins, word):
    assert decode(word) == ins


ALL_R = ["add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
         "addw", "subw", "sllw", "srlw", "sraw", "mul", "mulh", "mulhsu",
         "mulhu", "div", "divu", "rem", "remu", "mulw", "divw", "divuw",
         "remw", "remuw"]


@pytest.mark.parametrize("mnem", ALL_R)
def test_rtype_roundtrip(mnem):
    ins = Instr(mnem, rd=3, rs1=17, rs2=29)
    assert decode(encode(ins)) == ins


@pytest.mark.parametrize("mnem", ["addi", "slti", "sltiu", "xori", "ori",
                                  "andi", "addiw"])
@pytest.mark.parametrize("imm", [-2048, -1, 0, 1, 2047])
def test_itype_roundtrip(mnem, imm):
    ins = Instr(mnem, rd=1, rs1=2, imm=imm)
    assert decode(encode(ins)) == ins


@pytest.mark.parametrize("mnem,maxsh", [("slli", 63), ("srli", 63),
                                        ("srai", 63), ("slliw", 31),
                                        ("srliw", 31), ("sraiw", 31)])
def test_shift_roundtrip(mnem, maxsh):
    for sh in (0, 1, maxsh):
        ins = Instr(mnem, rd=4, rs1=9, imm=sh)
        assert decode(encode(ins)) == ins


@pytest.mark.parametrize("mnem", ["lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"])
def test_load_roundtrip(mnem):
    ins = Instr(mnem, rd=6, rs1=11, imm=-128)
    assert decode(encode(ins)) == ins


@pytest.mark.parametrize("mnem", ["sb", "sh", "sw", "sd"])
def test_store_roundtrip(mnem):
    ins = Instr(mnem, rs1=12, rs2=13, imm=257)
    assert decode(encode(ins)) == ins


@pytest.mark.parametrize("mnem", ["beq", "bne", "blt", "bge", "bltu", "bgeu"])
@pytest.mark.parametrize("imm", [-4096, -2, 0, 2, 4094])
def test_branch_roundtrip(mnem, imm):
    ins = Instr(mnem, rs1=1, rs2=31, imm=imm)
    assert decode(encode(ins)) == ins


@pytest.mark.parametrize("imm", [-(1 << 20), -2, 0, 2, (1 << 20) - 2])
def test_jal_roundtrip(imm):
    ins = Instr("jal", rd=1, imm=imm)
    assert decode(encode(ins)) == ins


def test_misaligned_branch_rejected():
    with pytest.raises(DecodeError):
        encode(Instr("beq", rs1=0, rs2=0, imm=3))


def test_out_of_range_imm_rejected():
    with pytest.raises(DecodeError):
        encode(Instr("addi", rd=1, rs1=1, imm=5000))


def test_bad_register_rejected():
    with pytest.raises(DecodeError):
        Instr("add", rd=32)


def test_unknown_mnemonic_rejected():
    with pytest.raises(DecodeError):
        Instr("vadd")


def test_decode_garbage_raises():
    with pytest.raises(DecodeError):
        decode(0xFFFFFFFF)


def test_op_classes():
    assert Instr("lw", rd=1, rs1=2).op_class == OpClass.LOAD
    assert Instr("sd", rs1=2, rs2=3).op_class == OpClass.STORE
    assert Instr("mul", rd=1, rs1=2, rs2=3).op_class == OpClass.INT_MUL
    assert Instr("div", rd=1, rs1=2, rs2=3).op_class == OpClass.INT_DIV
    assert Instr("beq", rs1=1, rs2=2).op_class == OpClass.BRANCH
    assert Instr("jal", rd=0, imm=8).op_class == OpClass.JUMP
    assert Instr("jal", rd=1, imm=8).op_class == OpClass.CALL
    assert Instr("jalr", rd=0, rs1=1).op_class == OpClass.RET
    assert Instr("jalr", rd=1, rs1=5).op_class == OpClass.CALL
    assert Instr("ecall").op_class == OpClass.CSR


def test_str_smoke():
    assert "add x1, x2, x3" == str(Instr("add", rd=1, rs1=2, rs2=3))
    assert "lw x5, 16(x10)" == str(Instr("lw", rd=5, rs1=10, imm=16))
