"""End-to-end FarmServer tests over the unix-socket protocol.

Every test runs a real server (background thread, forked workers) and a
real client; the payload assertions hold the served path to the same
bit-identity contract as serial :func:`repro.farm.execute_job`.
"""

import time

import pytest

from repro.farm import Job, execute_job
from repro.instrument.stream import read_stream
from repro.serve import FarmServer, ServeError
from repro.soc import ROCKET1

EI = dict(name="EI", scale=0.05)
MM_SLOW = dict(name="MM", scale=0.3, quantum=256)


def kernel_job(**kw):
    kw = {**EI, **kw}
    return Job.kernel(ROCKET1, kw.pop("name"), **kw)


def serve(tmp_path, **kw):
    kw.setdefault("deploy", "local:1")
    kw.setdefault("backoff_s", 0.01)
    return FarmServer.start_background(tmp_path / "spool", **kw)


def wait_until(client, jid, states, timeout_s=60.0):
    return client.wait(jid, timeout_s=timeout_s, poll_s=0.01, until=states)


# ------------------------------------------------------------- happy path

def test_served_payload_bit_identical_to_serial(tmp_path):
    job = kernel_job(seed=3)
    with serve(tmp_path) as handle:
        client = handle.client()
        assert client.ping()["protocol"] >= 1
        doc = client.submit(job, tenant="alice")
        done = wait_until(client, doc["id"], {"ok", "failed"})
        assert done["state"] == "ok"
        assert done["payload"] == execute_job(job)
        assert done["host"] == "local"
        assert not done["resumed"] and not done["from_cache"]


def test_store_hit_completes_without_running(tmp_path):
    job = kernel_job(seed=4)
    with serve(tmp_path) as handle:
        client = handle.client()
        first = wait_until(client, client.submit(job)["id"], {"ok"})
        again = client.submit(job, tenant="bob")     # other tenant shares
        assert again["state"] == "ok"                # terminal at submit
        assert again["from_cache"] is True
        full = client.status(again["id"], payload=True)
        assert full["payload"] == first["payload"]
        stats = client.status()["store"]
        assert stats["hits"] == 1 and stats["inserts"] == 1


def test_stream_records_job_lifecycle(tmp_path):
    with serve(tmp_path) as handle:
        client = handle.client()
        doc = client.submit(kernel_job(seed=5))
        wait_until(client, doc["id"], {"ok"})
        records = list(client.tail(doc["id"], follow=True, timeout_s=30))
    assert records[0]["t"] == "meta" and records[0]["source"] == "serve"
    events = [r["event"] for r in records if r["t"] == "serve"]
    assert events == ["queued", "start", "ok"]
    assert records[-1]["t"] == "seal" and records[-1]["reason"] == "ok"


def test_external_fleet_backend_bit_identical(tmp_path):
    """Serving through a FireSim-style host fleet changes provenance,
    never payloads."""
    jobs = [kernel_job(seed=s) for s in (30, 31, 32)]
    with serve(tmp_path, deploy="hosts:fpga-a=2,fpga-b=1",
               store=False) as handle:
        client = handle.client()
        docs = [client.submit(j) for j in jobs]
        for doc, job in zip(docs, jobs):
            done = wait_until(client, doc["id"], {"ok"})
            assert done["payload"] == execute_job(job)
            assert done["host"] in {"fpga-a", "fpga-b"}
        dep = client.status()["deploy"]
        assert dep["kind"] == "externally-provisioned"
        assert sum(h["busy"] for h in dep["hosts"]) == 0


# ------------------------------------------------------- failures, cancel

def test_failed_job_reports_error_after_retries(tmp_path):
    with serve(tmp_path, max_retries=1) as handle:
        client = handle.client()
        doc = client.submit(Job.selftest("raise"))
        done = wait_until(client, doc["id"], {"ok", "failed"})
        assert done["state"] == "failed"
        assert done["attempts"] == 2
        assert "injected failure" in done["error"]


def test_flaky_job_retries_to_success(tmp_path):
    with serve(tmp_path, max_retries=2) as handle:
        client = handle.client()
        doc = client.submit(Job.selftest("flaky", fail_times=1, value=9))
        done = wait_until(client, doc["id"], {"ok", "failed"})
        assert done["state"] == "ok" and done["attempts"] == 2
        assert done["payload"]["value"] == 9


def test_cancel_queued_job(tmp_path):
    with serve(tmp_path) as handle:
        client = handle.client()
        blocker = client.submit(Job.kernel(ROCKET1, **MM_SLOW))
        victim = client.submit(kernel_job(seed=6))
        got = client.cancel(victim["id"])
        assert got["state"] == "cancelled"
        with pytest.raises(ServeError, match="already cancelled"):
            client.cancel(victim["id"])
        wait_until(client, blocker["id"], {"ok"})


def test_unknown_ops_and_ids_are_protocol_errors(tmp_path):
    with serve(tmp_path) as handle:
        client = handle.client()
        with pytest.raises(ServeError, match="unknown job id"):
            client.status("j9999")
        with pytest.raises(ServeError, match="unknown op"):
            client._request({"op": "explode"})


# --------------------------------------------------------- preempt/resume

def test_preempt_resume_is_bit_identical(tmp_path):
    job = Job.kernel(ROCKET1, **MM_SLOW)
    with serve(tmp_path, checkpoint_every=2) as handle:
        client = handle.client()
        doc = client.submit(job, tenant="alice")
        wait_until(client, doc["id"], {"running"}, timeout_s=30)
        time.sleep(0.3)          # let a couple of checkpoints land
        client.cancel(doc["id"], preempt=True)
        pre = wait_until(client, doc["id"], {"preempted"}, timeout_s=30)
        assert pre["attempts"] == 1

        done = wait_until(client, client.resume(doc["id"])["id"], {"ok"})
        assert done["resumed"] is True
        assert done["attempts"] == 2
        assert done["payload"] == execute_job(job)

        events = [r["event"] for r in read_stream(doc["stream"])
                  if r.get("t") == "serve"]
        assert events == ["queued", "start", "preempted",
                          "resume-queued", "start", "ok"]


def test_preempted_job_can_be_cancelled_instead(tmp_path):
    with serve(tmp_path) as handle:
        client = handle.client()
        doc = client.submit(Job.kernel(ROCKET1, **MM_SLOW))
        wait_until(client, doc["id"], {"running"}, timeout_s=30)
        client.cancel(doc["id"], preempt=True)
        wait_until(client, doc["id"], {"preempted"}, timeout_s=30)
        assert client.cancel(doc["id"])["state"] == "cancelled"
        with pytest.raises(ServeError, match="only preempted"):
            client.resume(doc["id"])


# --------------------------------------------------- scheduling, observed

def _dispatch_order(client, ids, timeout_s=60.0):
    """Order in which *ids* first leave the queued state."""
    order = []
    deadline = time.monotonic() + timeout_s
    while len(order) < len(ids) and time.monotonic() < deadline:
        for doc in client.status()["jobs"]:
            if (doc["id"] in ids and doc["id"] not in order
                    and doc["state"] != "queued"):
                order.append(doc["id"])
        time.sleep(0.005)
    return order


def test_priority_order_served_end_to_end(tmp_path):
    with serve(tmp_path, store=False) as handle:
        client = handle.client()
        blocker = client.submit(Job.kernel(ROCKET1, **MM_SLOW))
        wait_until(client, blocker["id"], {"running"}, timeout_s=30)
        lo = client.submit(kernel_job(seed=10), priority=0)["id"]
        hi = client.submit(kernel_job(seed=11), priority=5)["id"]
        mid = client.submit(kernel_job(seed=12), priority=2)["id"]
        assert _dispatch_order(client, {lo, hi, mid}) == [hi, mid, lo]
        for jid in (blocker["id"], lo, hi, mid):
            assert wait_until(client, jid, {"ok"})["state"] == "ok"


def test_quota_limits_concurrent_slots_per_tenant(tmp_path):
    with serve(tmp_path, deploy="local:4", default_quota=1,
               store=False) as handle:
        client = handle.client()
        a1 = client.submit(Job.kernel(ROCKET1, **MM_SLOW), tenant="a")
        a2 = client.submit(Job.kernel(ROCKET1, **MM_SLOW), tenant="a")
        b1 = client.submit(Job.kernel(ROCKET1, **MM_SLOW), tenant="b")
        wait_until(client, a1["id"], {"running"}, timeout_s=30)
        wait_until(client, b1["id"], {"running"}, timeout_s=30)
        sched = client.status()["scheduler"]["tenants"]
        # both tenants run concurrently, but a's second job is held back
        assert sched["a"] == {"queued": 1, "running": 1, "quota": 1}
        assert sched["b"]["running"] == 1
        for doc in (a1, a2, b1):
            wait_until(client, doc["id"], {"ok"})


# -------------------------------------------------------------- shutdown

def test_drain_shutdown_finishes_queued_work(tmp_path):
    handle = serve(tmp_path)
    client = handle.client()
    ids = [client.submit(kernel_job(seed=20 + i))["id"] for i in range(3)]
    client.shutdown(drain=True)
    with pytest.raises(ServeError, match="shutting down"):
        client.submit(kernel_job(seed=99))
    handle.thread.join(timeout=60)
    assert not handle.thread.is_alive()
    import json
    manifest = json.loads(
        (handle.server.spool / "manifest.json").read_text())
    states = {j["id"]: j["state"] for j in manifest["jobs"]}
    assert all(states[jid] == "ok" for jid in ids)


def test_hard_shutdown_preempts_running_work(tmp_path):
    handle = serve(tmp_path)
    client = handle.client()
    doc = client.submit(Job.kernel(ROCKET1, **MM_SLOW))
    wait_until(client, doc["id"], {"running"}, timeout_s=30)
    client.shutdown(drain=False)
    handle.thread.join(timeout=30)
    assert not handle.thread.is_alive()
    final = handle.server.jobs[doc["id"]]
    assert final.state in {"preempted", "ok"}
