"""Crash-safe recovery, host quarantine, and checkpoint migration.

The self-healing half of the serve layer: a journal replay after a
hard crash must complete every accepted job exactly once, and a
quarantined host's jobs must migrate to healthy hosts — all without
ever changing a payload bit.
"""

import json
import time

import pytest

from repro.farm import Job, execute_job
from repro.instrument.stream import read_stream
from repro.reliability import FaultPlan
from repro.serve import (FarmServer, ServeClient, ServeJournal,
                        job_to_wire, replay_journal)
from repro.serve.queue import JobRecord
from repro.soc import ROCKET1

EI = dict(name="EI", scale=0.05)


def kernel_job(**kw):
    kw = {**EI, **kw}
    return Job.kernel(ROCKET1, kw.pop("name"), **kw)


def slow_job(**kw):
    return Job.kernel(ROCKET1, "MM", scale=0.5, quantum=256, **kw)


def serve(tmp_path, **kw):
    kw.setdefault("deploy", "local:1")
    kw.setdefault("backoff_s", 0.01)
    return FarmServer.start_background(tmp_path / "spool", **kw)


def wait_until(client, jid, states, timeout_s=60.0):
    return client.wait(jid, timeout_s=timeout_s, poll_s=0.01, until=states)


def serve_events(stream):
    return [r["event"] for r in read_stream(stream) if r.get("t") == "serve"]


# ---------------------------------------------------------------- journal

def _rec(jid, seq, state="queued", **kw):
    rec = JobRecord(id=jid, tenant="t", priority=0,
                    job=Job.selftest("ok"), seq=seq)
    rec.state = state
    for k, v in kw.items():
        setattr(rec, k, v)
    return rec


def test_journal_replay_folds_lifecycle(tmp_path):
    path = tmp_path / "journal.jsonl"
    j = ServeJournal(path)
    wire = job_to_wire(Job.selftest("ok"))
    a, b = _rec("j0001", 1), _rec("j0002", 2)
    j.submit(a, wire=wire)
    j.submit(b, wire=wire)
    a.state, a.attempts, a.host = "running", 1, "local"
    j.state(a, pid=4242)
    b.state, b.attempts = "ok", 1
    j.state(b)
    j.close()

    summaries = {s["id"]: s for s in replay_journal(path)}
    assert list(summaries) == ["j0001", "j0002"]     # admission order
    ja, jb = summaries["j0001"], summaries["j0002"]
    assert ja["state"] == "running" and ja["pid"] == 4242
    assert ja["orphaned"] and not ja["terminal"]
    assert jb["terminal"] and not jb["orphaned"]
    assert ja["job"] == wire


def test_journal_replay_skips_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    j = ServeJournal(path)
    j.submit(_rec("j0001", 1), wire=job_to_wire(Job.selftest("ok")))
    j.close()
    with open(path, "ab") as fh:                     # the crash point
        fh.write(b'{"t": "state", "id": "j0001", "sta')
    summaries = replay_journal(path)
    assert len(summaries) == 1
    assert summaries[0]["state"] == "queued"         # torn line ignored


def test_journal_survives_reopen_without_duplicate_meta(tmp_path):
    path = tmp_path / "journal.jsonl"
    ServeJournal(path).close()
    ServeJournal(path).close()                       # the --recover reopen
    metas = [line for line in path.read_text().splitlines()
             if json.loads(line)["t"] == "meta"]
    assert len(metas) == 1


# ---------------------------------------------------------- crash/recover

def test_crash_recover_completes_every_job_exactly_once(tmp_path):
    spool = tmp_path / "spool"
    fast, slow, queued = kernel_job(seed=11), slow_job(), kernel_job(seed=12)

    handle = serve(tmp_path, checkpoint_every=2)
    client = handle.client()
    fast_id = client.submit(fast)["id"]
    done = wait_until(client, fast_id, {"ok"})
    assert done["attempts"] == 1
    slow_id = client.submit(slow)["id"]
    wait_until(client, slow_id, {"running"}, timeout_s=30)
    time.sleep(0.3)                  # let a couple of checkpoints land
    queued_id = client.submit(queued)["id"]
    handle.crash()

    handle = serve(tmp_path, checkpoint_every=2, recover=True)
    client = handle.client()
    try:
        # completed work is restored, never re-run
        restored = client.status(fast_id, payload=True)
        assert restored["state"] == "ok" and restored["attempts"] == 1
        assert restored["payload"] == execute_job(fast)
        # the orphaned running job resumes from its spool checkpoint
        done_slow = wait_until(client, slow_id, {"ok", "failed"})
        assert done_slow["state"] == "ok"
        assert done_slow["recovered"] is True
        assert client.status(slow_id, payload=True)["payload"] \
            == execute_job(slow)
        events = serve_events(done_slow["stream"])
        assert "orphaned" in events and "recovered" in events
        assert events[-1] == "ok"
        # the queued job just runs
        done_q = wait_until(client, queued_id, {"ok", "failed"})
        assert done_q["state"] == "ok"
        assert client.status(queued_id, payload=True)["payload"] \
            == execute_job(queued)
    finally:
        handle.stop()

    recovers = [json.loads(line)
                for line in (spool / "journal.jsonl").read_text().splitlines()
                if '"recover"' in line]
    assert recovers and recovers[-1]["restored"] >= 1
    assert recovers[-1]["requeued"] >= 1


def test_recover_on_empty_spool_is_a_no_op(tmp_path):
    with serve(tmp_path, recover=True) as handle:
        client = handle.client()
        doc = client.submit(kernel_job(seed=13))
        assert wait_until(client, doc["id"], {"ok"})["state"] == "ok"


# ------------------------------------------------- quarantine + migration

def test_stalled_host_is_quarantined_and_jobs_migrate(tmp_path):
    plan = FaultPlan.parse("host-stall host=a count=1")
    victim = kernel_job(seed=14, timeout_s=0.3)
    filler = kernel_job(seed=15)
    mover = slow_job()
    ref = execute_job(mover)

    with serve(tmp_path, deploy="hosts:a=2,b=1", fault_plan=plan,
               suspect_after=1, quarantine_after=1, probe_interval=1000,
               checkpoint_every=2, max_retries=1) as handle:
        client = handle.client()
        victim_id = client.submit(victim)["id"]      # host a, stalls
        filler_id = client.submit(filler)["id"]      # host b (least loaded)
        mover_id = client.submit(mover)["id"]        # host a, second slot

        done = wait_until(client, mover_id, {"ok", "failed"})
        assert done["state"] == "ok"
        assert done["host"] == "b"                   # moved off a
        assert done["migrations"] == 1
        assert client.status(mover_id, payload=True)["payload"] == ref
        events = serve_events(done["stream"])
        assert "migrate" in events and "recover" in events

        # the stall victim itself retries on the healthy host for free
        done_v = wait_until(client, victim_id, {"ok", "failed"})
        assert done_v["state"] == "ok" and done_v["host"] == "b"
        assert "quarantine" in serve_events(done_v["stream"])
        wait_until(client, filler_id, {"ok"})

        hosts = {h["name"]: h for h in client.status()["deploy"]["hosts"]}
        assert hosts["a"]["state"] == "quarantined"
        assert hosts["b"]["state"] == "healthy"


def test_host_timeouts_do_not_burn_the_retry_budget(tmp_path):
    """A host-correlated failure earns a credit: the job still gets its
    full retry budget on a working host."""
    plan = FaultPlan.parse("host-stall host=a count=1")
    job = kernel_job(seed=16, timeout_s=0.3)
    with serve(tmp_path, deploy="hosts:a=1,b=1", fault_plan=plan,
               suspect_after=1, quarantine_after=1, probe_interval=1000,
               max_retries=0) as handle:
        client = handle.client()
        done = wait_until(client, client.submit(job)["id"], {"ok", "failed"})
        # attempt 1 timed out on a (host credit), attempt 2 ran on b —
        # with max_retries=0 an uncredited failure would have been final
        assert done["state"] == "ok"
        assert done["attempts"] == 2 and done["host"] == "b"


# ------------------------------------------------------- client transport

def test_client_retries_until_server_appears(tmp_path):
    spool = tmp_path / "spool"
    sock = spool / "serve.sock"
    result: dict = {}

    import threading

    def late_submit():
        client = ServeClient(str(sock), connect_retries=40,
                             retry_backoff_s=0.05)
        result.update(client.submit(kernel_job(seed=17)))

    racer = threading.Thread(target=late_submit)
    racer.start()
    time.sleep(0.2)                   # client is already retrying ENOENT
    with FarmServer.start_background(spool, deploy="local:1",
                                     backoff_s=0.01) as handle:
        racer.join(timeout=30)
        assert result.get("id")
        done = wait_until(handle.client(), result["id"], {"ok"})
        assert done["state"] == "ok"


def test_client_retry_budget_is_bounded(tmp_path):
    from repro.serve import ServeError

    client = ServeClient(str(tmp_path / "nope.sock"),
                         connect_retries=2, retry_backoff_s=0.001)
    with pytest.raises(ServeError, match="cannot reach server"):
        client.ping()


def test_dropped_connection_is_retried_without_double_submit(tmp_path):
    plan = FaultPlan.parse("socket-drop request=1; socket-drop request=3")
    with serve(tmp_path, fault_plan=plan) as handle:
        client = handle.client()
        doc = client.submit(kernel_job(seed=18))     # request 1 dropped
        done = wait_until(client, doc["id"], {"ok"})  # some polls dropped
        assert done["state"] == "ok"
        # exactly one job exists: the retried submit did not duplicate
        assert len(client.status()["jobs"]) == 1
