"""FairScheduler unit tests: priority order, quotas, cross-tenant fairness."""

import pytest

from repro.farm import Job
from repro.serve import FairScheduler, JobRecord, TERMINAL_STATES
from repro.soc import ROCKET1

_SEQ = 0


def rec(tenant="default", priority=0, seq=None, name="EI"):
    global _SEQ
    if seq is None:
        seq = _SEQ
        _SEQ += 1
    return JobRecord(id=f"j{seq:04d}", tenant=tenant, priority=priority,
                     job=Job.kernel(ROCKET1, name, scale=0.05), seq=seq)


def drain(sched):
    """Pick until empty, finishing each job immediately (serial farm)."""
    order = []
    while True:
        r = sched.pick()
        if r is None:
            break
        order.append(r)
        sched.job_finished(r.tenant)
    return order


# -------------------------------------------------------------- priorities

def test_higher_priority_dispatches_first():
    s = FairScheduler()
    lo, hi, mid = rec(priority=0), rec(priority=5), rec(priority=2)
    for r in (lo, hi, mid):
        s.submit(r)
    assert [r.priority for r in drain(s)] == [5, 2, 0]


def test_equal_priority_is_fifo():
    s = FairScheduler()
    first, second, third = rec(), rec(), rec()
    for r in (third, first, second):  # submission order != seq order
        s.submit(r)
    assert [r.seq for r in drain(s)] == sorted(
        r.seq for r in (first, second, third))


def test_late_high_priority_jumps_the_backlog():
    s = FairScheduler()
    for _ in range(3):
        s.submit(rec(priority=0))
    s.submit(rec(priority=9))
    assert drain(s)[0].priority == 9


# ------------------------------------------------------------------ quotas

def test_quota_gates_dispatch_not_admission():
    s = FairScheduler(quotas={"t": 1})
    a, b = rec(tenant="t"), rec(tenant="t")
    s.submit(a)
    s.submit(b)
    assert s.queued == 2                    # both admitted
    assert s.pick() is a
    assert s.pick() is None                 # quota holds b back
    s.job_finished("t")
    assert s.pick() is b


def test_default_quota_applies_to_unnamed_tenants():
    s = FairScheduler(quotas={"vip": 2}, default_quota=1)
    assert s.quota("vip") == 2
    assert s.quota("anyone-else") == 1
    for _ in range(2):
        s.submit(rec(tenant="vip"))
        s.submit(rec(tenant="joe"))
    picked = [s.pick() for _ in range(4)]
    got = [r.tenant for r in picked if r is not None]
    assert got.count("vip") == 2 and got.count("joe") == 1


def test_unlimited_quota_by_default():
    s = FairScheduler()
    for _ in range(5):
        s.submit(rec(tenant="t"))
    assert sum(s.pick() is not None for _ in range(5)) == 5


# ---------------------------------------------------------------- fairness

def test_flood_cannot_starve_other_tenant():
    s = FairScheduler()
    flood = [rec(tenant="flood") for _ in range(10)]
    for r in flood:
        s.submit(r)
    late = rec(tenant="late")
    s.submit(late)
    first = s.pick()                 # flood got in first...
    assert first.tenant == "flood"
    second = s.pick()                # ...but late dispatches no later than
    assert second is late            # the flood's second job


def test_fairness_prefers_fewest_running_then_least_recent():
    s = FairScheduler()
    for _ in range(2):
        s.submit(rec(tenant="a"))
        s.submit(rec(tenant="b"))
    # serial drain alternates tenants (name order breaks the first tie)
    assert [r.tenant for r in drain(s)] == ["a", "b", "a", "b"]


def test_schedule_is_deterministic():
    def run():
        global _SEQ
        _SEQ = 0
        s = FairScheduler(quotas={"a": 2}, default_quota=3)
        for i in range(9):
            s.submit(rec(tenant="ab"[i % 2], priority=i % 3))
        return [(r.tenant, r.priority, r.seq) for r in drain(s)]

    assert run() == run()


# ------------------------------------------------------------- bookkeeping

def test_withdraw_and_counts():
    s = FairScheduler()
    a, b = rec(), rec()
    s.submit(a)
    s.submit(b)
    assert s.withdraw(a) is True
    assert s.withdraw(a) is False           # already gone
    assert s.queued == 1
    assert s.pick() is b
    assert s.running == 1
    s.job_finished(b.tenant)
    assert s.running == 0


def test_job_finished_without_running_job_raises():
    s = FairScheduler()
    with pytest.raises(ValueError):
        s.job_finished("ghost")


def test_describe_and_terminal_states():
    s = FairScheduler(quotas={"a": 2}, default_quota=4)
    s.submit(rec(tenant="a"))
    doc = s.describe()
    assert doc["default_quota"] == 4
    assert doc["tenants"]["a"] == {"queued": 1, "running": 0, "quota": 2}
    r = rec()
    assert not r.done
    for st in TERMINAL_STATES:
        r.state = st
        assert r.done
