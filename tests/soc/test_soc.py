"""Tests for SoC configs, presets, token lockstep, and multi-tile systems."""

import numpy as np
import pytest

from repro.isa.trace import TraceBuilder
from repro.soc import (
    ALL_CONFIGS,
    BANANA_PI_HW,
    BANANA_PI_SIM,
    FAST_BANANA_PI_SIM,
    LARGE_BOOM,
    MILKV_HW,
    MILKV_SIM,
    ROCKET1,
    SMALL_BOOM,
    LockstepScheduler,
    SoCConfig,
    System,
    TokenChannel,
    get_config,
    table4_rows,
    table5_rows,
)
from repro.soc.config import BranchPredictorConfig


def alu_loop(n):
    b = TraceBuilder()
    for i in range(n):
        b.alu(5 + i % 8, 20, 21)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(n, dtype=np.uint64) % 64) * 4
    return t


def load_loop(n, base, stride=64):
    b = TraceBuilder()
    for i in range(n):
        b.load(5 + i % 8, base + i * stride)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(n, dtype=np.uint64) % 64) * 4
    return t


# ------------------------------------------------------------ configs

def test_all_presets_construct_systems():
    for name, cfg in ALL_CONFIGS.items():
        sys_ = System(cfg)
        assert len(sys_.tiles) == cfg.ncores, name


def test_get_config_known_and_unknown():
    assert get_config("Rocket1") is ROCKET1
    with pytest.raises(KeyError):
        get_config("Rocket9")


def test_table4_rows_match_paper():
    rows = {r["Model"]: r for r in table4_rows()}
    assert rows["Rocket1"]["Front End"] == "Fetch:2, Decode:1"
    assert rows["Rocket1"]["L2 Banks"] == "1"
    assert rows["Rocket2"]["L2 Banks"] == "4"
    assert rows["SmallBOOM"]["RoB"] == "RoB:32"
    assert rows["MediumBOOM"]["RoB"] == "RoB:64"
    assert rows["LargeBOOM"]["RoB"] == "RoB:96"
    assert rows["LargeBOOM"]["LSQ"] == "Load:24, Store:24"
    assert rows["LargeBOOM"]["Front End"] == "Fetch:8, Decode:3"


def test_table5_cache_sizes():
    rows = {r["Platform"]: r for r in table5_rows()}
    bp = rows["BananaPi-K1"]
    assert bp["HW L1D"] == "32 KiB" and bp["Sim L1D"] == "32 KiB"
    assert bp["HW L2"] == "512 KiB" and bp["Sim L2"] == "512 KiB"
    assert bp["HW LLC"] == "None"
    mv = rows["MILKV-SG2042"]
    assert mv["HW L1D"] == "64 KiB" and mv["Sim L1D"] == "64 KiB"
    assert mv["HW L2"] == "1024 KiB" and mv["Sim L2"] == "1024 KiB"
    assert mv["HW LLC"] == "64 MiB" and mv["Sim LLC"] == "64 MiB"
    assert "DDR3" in mv["Sim memory"] and "DDR4" in mv["HW memory"]
    assert "LPDDR4" in bp["HW memory"]


def test_fast_model_is_double_clock():
    assert FAST_BANANA_PI_SIM.core_ghz == pytest.approx(2 * BANANA_PI_SIM.core_ghz)
    assert FAST_BANANA_PI_SIM.hierarchy.dram == BANANA_PI_SIM.hierarchy.dram


def test_silicon_models_flagged():
    assert BANANA_PI_HW.is_silicon and MILKV_HW.is_silicon
    assert not ROCKET1.is_silicon
    assert BANANA_PI_HW.prefetcher is not None
    assert BANANA_PI_SIM.prefetcher is None


def test_config_validation():
    with pytest.raises(ValueError):
        SoCConfig(name="x", core_type="inorder")  # missing inorder cfg
    with pytest.raises(ValueError):
        SoCConfig(name="x", core_type="vliw", inorder=ROCKET1.inorder)
    with pytest.raises(ValueError):
        BranchPredictorConfig(kind="perceptron")


def test_with_ablation_helper():
    faster = ROCKET1.with_(name="Rocket1-3GHz", core_ghz=3.0,
                           hierarchy=ROCKET1.hierarchy.__class__(
                               **{**ROCKET1.hierarchy.__dict__, "core_ghz": 3.0}))
    assert faster.core_ghz == 3.0
    assert ROCKET1.core_ghz == 1.6  # original untouched


def test_seconds_conversion():
    assert ROCKET1.seconds(1_600_000_000) == pytest.approx(1.0)
    assert MILKV_SIM.seconds(2_000_000_000) == pytest.approx(1.0)


# ------------------------------------------------------------ tokens

def test_token_channel_flow():
    ch = TokenChannel(capacity=4)
    ch.produce(3)
    assert ch.occupancy == 3
    ch.consume(2)
    assert ch.occupancy == 1
    with pytest.raises(RuntimeError):
        ch.produce(4)
    with pytest.raises(RuntimeError):
        ch.consume(2)


def test_token_channel_validation():
    with pytest.raises(ValueError):
        TokenChannel(0)
    with pytest.raises(ValueError):
        LockstepScheduler(0)


class FakeLane:
    def __init__(self, total):
        self.t = 0
        self.total = total
        self.trace_of_calls = []

    def local_time(self):
        return self.t

    def advance(self, until):
        self.trace_of_calls.append(until)
        self.t = min(until, self.total)
        return self.t < self.total


def test_scheduler_bounds_skew():
    lanes = [FakeLane(100_000), FakeLane(50_000)]
    sched = LockstepScheduler(quantum=1000)
    sched.run(lanes)
    assert lanes[0].t == 100_000
    assert lanes[1].t == 50_000
    assert sched.stats.max_skew <= 51_000  # bounded while both were live


def test_scheduler_least_advanced_first():
    lanes = [FakeLane(3000), FakeLane(3000)]
    LockstepScheduler(quantum=1000).run(lanes)
    # both should have been interleaved, not run to completion one by one
    assert lanes[0].trace_of_calls[0] == 1000
    assert lanes[1].trace_of_calls[0] == 1000


# ------------------------------------------------------------ systems

def test_single_tile_run():
    sys_ = System(ROCKET1)
    r = sys_.run(alu_loop(2000))
    assert r.instructions == 2000
    assert 0.5 < r.ipc <= 1.0


def test_dual_issue_silicon_faster_than_rocket():
    t = alu_loop(4000)
    r_sim = System(BANANA_PI_SIM).run(t)
    r_hw = System(BANANA_PI_HW).run(t)
    assert r_hw.cycles < r_sim.cycles * 0.7


def test_parallel_ranks_share_uncore():
    """Four streaming tiles contend for DRAM: slower than one tile alone."""
    n = 3000
    solo = System(ROCKET1)
    r_solo = solo.run(load_loop(n, 0x100_0000, stride=4096))
    quad = System(ROCKET1)
    traces = [load_loop(n, 0x100_0000 + i * 0x100_0000, stride=4096)
              for i in range(4)]
    rs = quad.run_parallel(traces)
    assert all(r.instructions == n for r in rs)
    slowest = max(r.cycles for r in rs)
    assert slowest > r_solo.cycles * 1.3  # contention visible


def test_parallel_validates_lane_count():
    sys_ = System(ROCKET1)
    with pytest.raises(ValueError):
        sys_.run_parallel([alu_loop(10)] * 5)


def test_parallel_deterministic():
    def go():
        s = System(SMALL_BOOM)
        traces = [load_loop(1500, 0x100_0000 + i * 0x40_0000, stride=256)
                  for i in range(4)]
        return [r.cycles for r in s.run_parallel(traces)]

    assert go() == go()


def test_milkv_sim_has_simplified_llc_and_hw_realistic():
    s_sim = System(MILKV_SIM)
    s_hw = System(MILKV_HW)
    assert s_sim.uncore.llc is not None
    assert s_hw.uncore.llc is not None
    # simplified slices have single-digit hit latency; realistic ~38
    assert s_sim.uncore.llc.slices[0].cfg.hit_latency <= 8
    assert s_hw.uncore.llc.slices[0].cfg.hit_latency >= 30


def test_prefetcher_attached_only_on_silicon():
    assert System(BANANA_PI_HW).tiles[0].port.prefetcher is not None
    assert System(BANANA_PI_SIM).tiles[0].port.prefetcher is None


def test_prefetcher_helps_streaming():
    # streaming loads feeding dependent consumers: without a prefetcher
    # every line is a demand miss the consumer waits for
    b = TraceBuilder()
    for i in range(3000):
        dst = 5 + i % 8
        b.load(dst, 0x200_0000 + i * 64)
        b.alu(15, dst, 20)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(len(t), dtype=np.uint64) % 64) * 4
    r_hw = System(BANANA_PI_HW).run(t)
    no_pf = BANANA_PI_HW.with_(name="K1-noPF", prefetcher=None)
    r_nopf = System(no_pf).run(t)
    assert r_hw.cycles < 0.8 * r_nopf.cycles
