"""Aggregate SoCConfig validation: every violation reported at once."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.inorder import InOrderConfig
from repro.soc.config import ConfigValidationError, SoCConfig
from repro.soc.presets import ALL_CONFIGS, ROCKET1, validate_presets


def test_all_violations_collected_into_one_error():
    with pytest.raises(ConfigValidationError) as exc_info:
        SoCConfig(name="broken", core_type="weird", ncores=0, core_ghz=-1.0)
    err = exc_info.value
    assert err.name == "broken"
    assert len(err.problems) >= 4        # core_type, ncores, ghz, hierarchy
    message = str(err)
    for needle in ("core_type", "ncores", "core_ghz", "hierarchy"):
        assert needle in message, message


def test_validation_error_is_a_value_error():
    with pytest.raises(ValueError):
        SoCConfig(name="broken", core_type="inorder", inorder=None)


@pytest.mark.parametrize("changes, needle", [
    (dict(ncores=0), "ncores"),
    (dict(ncores=-3), "ncores"),
    (dict(core_ghz=0.0), "core_ghz"),
    (dict(core_ghz=2.5), "hierarchy.core_ghz"),  # hierarchy left at 1.6
    (dict(core_type="vliw"), "core_type"),
    (dict(core_type="ooo"), "OoOConfig"),        # ooo selected, none given
    (dict(host_mhz=-5.0), "host_mhz"),
    (dict(is_silicon=True), "silicon"),          # silicon with a host rate
])
def test_negative_path_matrix(changes, needle):
    with pytest.raises(ConfigValidationError) as exc_info:
        ROCKET1.with_(name="mutant", **changes)
    assert any(needle in p for p in exc_info.value.problems), \
        exc_info.value.problems


def test_inorder_missing_core_config():
    with pytest.raises(ConfigValidationError, match="InOrderConfig"):
        SoCConfig(name="nocore", core_type="inorder")


def test_valid_config_reports_no_problems():
    assert ROCKET1.validation_problems() == []
    cfg = SoCConfig(name="tiny", core_type="inorder",
                    inorder=InOrderConfig(), ncores=1)
    assert cfg.validation_problems() == []


def test_every_preset_is_valid():
    validate_presets()                   # the import-time gate, re-run
    for cfg in ALL_CONFIGS.values():
        assert cfg.validation_problems() == [], cfg.name


def test_validate_presets_catches_registry_key_drift():
    doctored = dict(ALL_CONFIGS)
    doctored["WrongKey"] = doctored.pop("Rocket1")
    with pytest.raises(ConfigValidationError) as exc_info:
        validate_presets(doctored)
    assert exc_info.value.name == "presets"
    assert any("WrongKey" in p for p in exc_info.value.problems)


def test_validate_presets_aggregates_multiple_problems():
    doctored = {"A": ALL_CONFIGS["Rocket1"], "B": ALL_CONFIGS["SmallBOOM"]}
    with pytest.raises(ConfigValidationError) as exc_info:
        validate_presets(doctored)
    assert len(exc_info.value.problems) == 2  # both key mismatches listed


def test_with_revalidates():
    """Ablation copies go through the same aggregate validation."""
    good = ROCKET1.with_(name="ablated", ncores=2)
    assert good.ncores == 2
    with pytest.raises(ConfigValidationError):
        good.with_(ncores=0)


def test_frozen_config_cannot_dodge_validation():
    with pytest.raises(dataclasses.FrozenInstanceError):
        ROCKET1.ncores = 0  # type: ignore[misc]
