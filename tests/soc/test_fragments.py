"""Chipyard-style config-fragment tests."""

import pytest

from repro.mem.dram import DDR4_3200_4CH
from repro.soc import (
    BANANA_PI_SIM,
    LARGE_BOOM,
    MILKV_SIM,
    ROCKET1,
    ROCKET2,
    System,
    WithBusWidth,
    WithClock,
    WithCores,
    WithDRAM,
    WithL1Size,
    WithL2Banks,
    WithLLC,
    WithoutLLC,
    WithoutPrefetcher,
    WithPrefetcher,
    WithReplacement,
    WithVectorUnit,
    compose,
)


def test_rocket2_is_rocket1_plus_banks():
    built = compose(ROCKET1, WithL2Banks(4), name="Rocket2")
    assert built.hierarchy == ROCKET2.hierarchy
    assert built.name == "Rocket2"


def test_banana_pi_sim_is_rocket2_plus_bus():
    built = compose(ROCKET2, WithBusWidth(128), name="BananaPiSim")
    assert built.hierarchy == BANANA_PI_SIM.hierarchy


def test_with_clock_rederives_hierarchy_clock():
    fast = compose(BANANA_PI_SIM, WithClock(3.2))
    assert fast.core_ghz == 3.2
    assert fast.hierarchy.core_ghz == 3.2
    System(fast)  # constructs without the clock-mismatch ValueError


def test_with_dram_and_llc():
    cfg = compose(MILKV_SIM, WithDRAM(DDR4_3200_4CH))
    assert "DDR4" in cfg.hierarchy.dram.name
    cfg2 = compose(LARGE_BOOM, WithLLC(32 << 20, simplified=False))
    assert cfg2.hierarchy.llc_bytes == 32 << 20
    assert not cfg2.hierarchy.llc_simplified
    cfg3 = compose(MILKV_SIM, WithoutLLC())
    assert cfg3.hierarchy.llc_bytes is None


def test_with_l1_size():
    big = compose(LARGE_BOOM, WithL1Size(64))
    assert big.hierarchy.l1d.size_bytes == 64 * 1024
    assert big.hierarchy.l1i.size_bytes == 64 * 1024
    with pytest.raises(ValueError):
        compose(LARGE_BOOM, WithL1Size(48))  # 48 KiB / 8 ways: 96 sets


def test_with_cores_and_prefetcher():
    cfg = compose(ROCKET1, WithCores(2), WithPrefetcher())
    assert cfg.ncores == 2
    assert cfg.prefetcher is not None
    assert compose(cfg, WithoutPrefetcher()).prefetcher is None


def test_with_vector_unit_inorder_only():
    cfg = compose(ROCKET1, WithVectorUnit())
    assert cfg.inorder.vector is not None
    with pytest.raises(ValueError):
        compose(LARGE_BOOM, WithVectorUnit())


def test_with_replacement():
    cfg = compose(ROCKET1, WithReplacement("plru"))
    assert cfg.hierarchy.l1d.replacement == "plru"
    with pytest.raises(ValueError):
        compose(ROCKET1, WithReplacement("fifo"))


def test_fragments_leave_base_untouched():
    compose(ROCKET1, WithL2Banks(16), WithBusWidth(256), WithCores(1))
    assert ROCKET1.hierarchy.l2.banks == 1
    assert ROCKET1.hierarchy.bus.width_bits == 64
    assert ROCKET1.ncores == 4


def test_composed_systems_run():
    from repro.workloads.microbench import get_kernel

    cfg = compose(ROCKET1, WithL2Banks(2), WithReplacement("plru"),
                  name="Composed")
    r = System(cfg).run(get_kernel("EI").build(scale=0.05))
    assert r.cycles > 0
