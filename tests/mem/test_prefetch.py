"""Stride-prefetcher unit tests."""

import pytest

from repro.mem.cache import Cache, CacheConfig, MemoryPort
from repro.mem.prefetch import PrefetcherConfig, StridePrefetcher


def make(degree=2, table=16):
    mem = MemoryPort(latency=100)
    cache = Cache(CacheConfig(sets=64, ways=8, hit_latency=2), mem)
    pf = StridePrefetcher(PrefetcherConfig(degree=degree, table_entries=table),
                          cache)
    return cache, pf


def test_unit_stride_stream_converted_to_hits():
    cache, pf = make()
    t = 0
    for i in range(40):
        addr = 0x10_0000 + i * 64
        done = cache.access(addr, t)
        pf.observe(addr, t)
        t = done + 60
    # after training (2 confident strides), demand accesses become hits
    assert cache.stats.hits >= 30
    assert pf.stats.issued > 20


def test_negative_stride_also_detected():
    cache, pf = make()
    t = 0
    for i in range(30):
        addr = 0x20_0000 - i * 64
        cache.access(addr, t)
        pf.observe(addr, t)
        t += 120
    assert pf.stats.issued > 10


def test_random_pattern_never_triggers():
    import numpy as np

    cache, pf = make()
    rng = np.random.default_rng(0)
    t = 0
    for i in range(60):
        addr = 0x30_0000 + int(rng.integers(0, 1 << 14)) * 64 * 7
        cache.access(addr, t)
        pf.observe(addr, t)
        t += 120
    assert pf.stats.issued <= 3  # accidental matches only


def test_same_line_repeats_do_not_reset_stride():
    cache, pf = make()
    t = 0
    # 8 accesses per line (8-byte elements): stride-0 noise within lines
    for i in range(160):
        addr = 0x40_0000 + i * 8
        cache.access(addr, t)
        pf.observe(addr, t)
        t += 15
    assert pf.stats.issued > 5


def test_table_capacity_bounded():
    cache, pf = make(table=4)
    t = 0
    for region in range(32):
        for i in range(3):
            addr = region * (1 << 12) + i * 64 + (1 << 22)
            cache.access(addr, t)
            pf.observe(addr, t)
            t += 50
    assert len(pf._table) <= 5


def test_config_validation():
    with pytest.raises(ValueError):
        PrefetcherConfig(table_entries=0)
    with pytest.raises(ValueError):
        PrefetcherConfig(degree=0)


def test_prefetch_consumes_next_level_bandwidth():
    cache, pf = make()
    mem = cache.next_level
    t = 0
    for i in range(30):
        addr = 0x50_0000 + i * 64
        cache.access(addr, t)
        pf.observe(addr, t)
        t += 120
    # prefetch fills reached memory (more accesses than demand misses alone)
    assert mem.accesses > cache.stats.misses - pf.stats.issued
