"""Unit tests for the DRAM timing models."""

import pytest

from repro.mem.dram import (
    DDR3_2000_QUAD_RANK,
    DDR4_3200_4CH,
    DRAM,
    DRAMConfig,
    DRAMTimings,
    LPDDR4_2666_DUAL,
    scale_to_frequency,
)


def test_peak_bandwidths_match_datasheets():
    # DDR3-2000 x64: 16 GB/s; DDR4-3200 x64 x4ch: 102.4 GB/s;
    # LPDDR4-2666 x32 x2ch: 21.3 GB/s
    assert DDR3_2000_QUAD_RANK.peak_bandwidth_gbps == pytest.approx(16.0)
    assert DDR4_3200_4CH.peak_bandwidth_gbps == pytest.approx(102.4)
    assert LPDDR4_2666_DUAL.peak_bandwidth_gbps == pytest.approx(21.328, rel=1e-3)


def test_idle_latency_reasonable():
    d = DRAM(DDR3_2000_QUAD_RANK, core_ghz=1.6)
    # idle miss latency should be tens of ns -> 50..120 cycles at 1.6 GHz
    assert 40 < d.idle_latency_cycles < 150


def test_row_hit_faster_than_row_miss():
    d = DRAM(DDR3_2000_QUAD_RANK, core_ghz=1.6)
    t1 = d.access(0, 0)                 # row miss (cold)
    t2 = d.access(64, t1 + 10) - (t1 + 10)  # same row -> hit
    d2 = DRAM(DDR3_2000_QUAD_RANK, core_ghz=1.6)
    t3 = d2.access(0, 0)
    # different row, same bank
    far = DDR3_2000_QUAD_RANK.row_bytes * DDR3_2000_QUAD_RANK.banks_per_rank * 4 * 8
    t4 = d2.access(far, t3 + 10) - (t3 + 10)
    assert t2 < t4
    assert d.stats.row_hits == 1


def test_channel_interleave_parallelism():
    """4-channel DDR4 streams faster than 1-channel DDR3 under load."""
    ddr3 = DRAM(DDR3_2000_QUAD_RANK, core_ghz=2.0)
    ddr4 = DRAM(DDR4_3200_4CH, core_ghz=2.0)
    n = 200
    t3 = t4 = 0
    for i in range(n):
        t3 = ddr3.access(i * 64, 0)
        t4 = ddr4.access(i * 64, 0)
    assert t4 < t3 / 2  # 4 channels + higher rate >= 2x throughput


def test_bandwidth_under_saturation():
    """Sustained stream throughput should approach (but not exceed) peak."""
    d = DRAM(DDR3_2000_QUAD_RANK, core_ghz=2.0)
    n = 2000
    finish = 0
    for i in range(n):
        finish = d.access(i * 64, 0)
    seconds = finish / 2.0e9
    gbps = n * 64 / seconds / 1e9
    assert gbps <= DDR3_2000_QUAD_RANK.peak_bandwidth_gbps * 1.001
    # this conservative queue model (depth 8, refresh, row misses)
    # sustains ~40-50% of the pin rate on a single request stream
    assert gbps > DDR3_2000_QUAD_RANK.peak_bandwidth_gbps * 0.38


def test_higher_core_clock_means_more_cycles():
    """Same DRAM at a faster core clock costs more core cycles (paper's
    Fast Banana Pi observation)."""
    d16 = DRAM(DDR3_2000_QUAD_RANK, core_ghz=1.6)
    d32 = DRAM(DDR3_2000_QUAD_RANK, core_ghz=3.2)
    assert d32.idle_latency_cycles == pytest.approx(2 * d16.idle_latency_cycles)


def test_queue_depth_limits_inflight():
    cfg = DRAMConfig(queue_depth=2, channels=1)
    d = DRAM(cfg, core_ghz=2.0)
    for i in range(16):
        d.access(i * 64, 0)
    assert d.stats.queue_wait_cycles > 0


def test_writes_return_early():
    d = DRAM(DDR3_2000_QUAD_RANK, core_ghz=2.0)
    tw = d.access(0, 0, is_store=True)
    d.reset()
    tr = d.access(0, 0, is_store=False)
    assert tw < tr


def test_map_address_spreads_channels():
    d = DRAM(DDR4_3200_4CH, core_ghz=2.0)
    chans = {d.map_address(i * 64)[0] for i in range(8)}
    assert chans == {0, 1, 2, 3}


def test_reset_clears_state():
    d = DRAM(DDR3_2000_QUAD_RANK, core_ghz=1.6)
    d.access(0, 0)
    d.reset()
    assert d.stats.accesses == 0
    assert d.access(0, 0) == d.access(0, 0) or True  # no crash after reset


def test_config_validation():
    with pytest.raises(ValueError):
        DRAMConfig(channels=0)
    with pytest.raises(ValueError):
        DRAMConfig(data_rate_mtps=-1)
    with pytest.raises(ValueError):
        DRAM(DDR3_2000_QUAD_RANK, core_ghz=0)


def test_scale_to_frequency():
    scaled = scale_to_frequency(DDR3_2000_QUAD_RANK, 1.6)
    assert scaled.data_rate_mtps == pytest.approx(3200.0)
    assert scaled.peak_bandwidth_gbps == pytest.approx(25.6)


def test_transfer_time_scales_with_width():
    t_ddr3 = DDR3_2000_QUAD_RANK.transfer_ns(64)
    t_lp = LPDDR4_2666_DUAL.transfer_ns(64)
    # 32-bit LPDDR4-2666 channel moves a line slower than 64-bit DDR3-2000
    assert t_lp > t_ddr3


def test_refresh_windows_stall_requests():
    """Requests landing inside a tRFC window wait for the refresh."""
    cfg = DRAMConfig(timings=DRAMTimings(tREFI=1000.0, tRFC=100.0))
    d = DRAM(cfg, core_ghz=1.0)
    # t=1010 is inside the refresh window [1000, 1100)
    t_in = d.access(0, 1010)
    d2 = DRAM(cfg, core_ghz=1.0)
    t_out = d2.access(0, 1150)  # outside the window
    assert d.stats.refresh_stall_cycles > 0
    assert t_in - 1010 > t_out - 1150  # the stalled request took longer


def test_refresh_closes_open_rows():
    cfg = DRAMConfig(timings=DRAMTimings(tREFI=2000.0, tRFC=100.0))
    d = DRAM(cfg, core_ghz=1.0)
    d.access(0, 200)          # opens a row, outside any refresh window
    d.access(64, 2010)        # lands inside the second window [2000, 2100)
    # the second access was a row miss: refresh closed the row
    assert d.stats.row_hits == 0
    assert d.stats.row_misses == 2


def test_refresh_overhead_is_small_in_steady_state():
    """tRFC/tREFI ~ 4.5%: streaming throughput barely changes."""
    d = DRAM(DDR3_2000_QUAD_RANK, core_ghz=2.0)
    n = 2000
    finish = 0
    for i in range(n):
        finish = d.access(i * 64, 0)
    gbps = n * 64 / (finish / 2.0e9) / 1e9
    assert gbps > DDR3_2000_QUAD_RANK.peak_bandwidth_gbps * 0.38
