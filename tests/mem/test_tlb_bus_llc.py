"""Tests for TLB, system bus, LLC, and coherence directory models."""

import pytest

from repro.mem.bus import BusConfig, SystemBus
from repro.mem.cache import MemoryPort
from repro.mem.coherence import SnoopDirectory
from repro.mem.llc import InterleavedLLC, RealisticLLC, SimplifiedLLC, make_llc_slices
from repro.mem.tlb import TLB, TLBConfig, TwoLevelTLB


# ---------------------------------------------------------------- TLB

def test_tlb_hit_after_fill():
    t = TLB(TLBConfig(entries=4))
    assert not t.lookup(0x1000)
    assert t.lookup(0x1FFF)  # same 4 KiB page
    assert not t.lookup(0x2000)


def test_tlb_lru_capacity():
    t = TLB(TLBConfig(entries=2))
    t.lookup(0x0000)
    t.lookup(0x1000)
    t.lookup(0x0000)     # touch page 0 -> page 1 is LRU
    t.lookup(0x2000)     # evicts page 1
    assert t.lookup(0x0000)
    assert not t.lookup(0x1000)


def test_tlb_translate_walk_cost():
    t = TLB(TLBConfig(entries=4, walk_latency=20, walk_accesses=0))
    done = t.translate(0x5000, 100)
    assert done == 120
    assert t.translate(0x5000, 200) == 200  # hit, zero added latency


def test_tlb_translate_with_walker():
    t = TLB(TLBConfig(entries=4, walk_latency=10, walk_accesses=2))
    mem = MemoryPort(latency=50)
    done = t.translate(0x7000, 0, walker=mem.access)
    assert done == 10 + 2 * 50
    assert mem.accesses == 2


def test_two_level_tlb():
    t = TwoLevelTLB(TLBConfig(entries=2), TLBConfig(entries=64, assoc=1))
    t.translate(0x1000, 0)
    t.translate(0x2000, 0)
    t.translate(0x3000, 0)  # evicts 0x1000 from L1; L2 still holds it
    done = t.translate(0x1000, 100)
    assert done == 100 + t.l2_hit_latency


def test_tlb_config_validation():
    with pytest.raises(ValueError):
        TLBConfig(entries=0)
    with pytest.raises(ValueError):
        TLBConfig(entries=4, assoc=8)


# ---------------------------------------------------------------- Bus

def test_bus_beats():
    assert BusConfig(width_bits=64).beats(64) == 8
    assert BusConfig(width_bits=128).beats(64) == 4


def test_wider_bus_is_faster():
    b64 = SystemBus(BusConfig(width_bits=64))
    b128 = SystemBus(BusConfig(width_bits=128))
    assert b128.transfer(0, 64) < b64.transfer(0, 64)


def test_bus_contention_serialises():
    b = SystemBus(BusConfig(width_bits=64))
    t1 = b.transfer(0, 64)
    t2 = b.transfer(0, 64)  # issued at the same time -> queues
    assert t2 > t1
    assert b.stats.contention_cycles > 0


def test_bus_validation():
    with pytest.raises(ValueError):
        BusConfig(width_bits=0)
    with pytest.raises(ValueError):
        BusConfig(clock_ratio=0)


# ---------------------------------------------------------------- LLC

def test_simplified_llc_low_latency():
    mem = MemoryPort(latency=200)
    llc = SimplifiedLLC(1 << 20, mem, latency=4)
    t = llc.access(0x100, 0)
    assert llc.access(0x100, t) == t + 4


def test_realistic_llc_higher_latency():
    mem = MemoryPort(latency=200)
    llc = RealisticLLC(1 << 20, mem)
    t = llc.access(0x100, 0)
    assert llc.access(0x100, t) - t >= 30


def test_llc_bad_geometry_rejected():
    mem = MemoryPort()
    with pytest.raises(ValueError):
        SimplifiedLLC(3 * 64 * 8, mem)  # 3 sets: not a power of two


def test_interleaved_llc_routes_by_line():
    mems = [MemoryPort(latency=100) for _ in range(4)]
    llc = make_llc_slices(4 << 20, 4, mems)
    for i in range(8):
        llc.access(i * 64, 0)
    assert all(m.accesses == 2 for m in mems)
    assert llc.stats_accesses == 8
    assert llc.stats_misses == 8


def test_interleaved_llc_flush():
    mems = [MemoryPort() for _ in range(2)]
    llc = make_llc_slices(2 << 20, 2, mems)
    llc.access(0, 0)
    llc.flush()
    for s in llc.slices:
        assert s.resident_lines() == 0


# ------------------------------------------------------------ Coherence

def test_snoop_private_lines_free():
    d = SnoopDirectory()
    assert d.observe(0, 100, is_store=False) == 0
    assert d.observe(0, 100, is_store=True) == 0
    assert d.observe(0, 100, is_store=True) == 0


def test_snoop_store_invalidates_sharers():
    d = SnoopDirectory(invalidate_latency=24)
    d.observe(0, 7, is_store=False)
    d.observe(1, 7, is_store=False)
    extra = d.observe(1, 7, is_store=True)
    assert extra == 24
    assert d.stats.invalidations == 1


def test_snoop_read_downgrades_owner():
    d = SnoopDirectory(invalidate_latency=10)
    d.observe(0, 9, is_store=True)
    extra = d.observe(1, 9, is_store=False)
    assert extra == 10
    assert d.stats.ownership_changes == 1


def test_snoop_prune_bounds_memory():
    d = SnoopDirectory(max_lines=64)
    for line in range(1000):
        d.observe(0, line, is_store=False)
    assert len(d._sharers) <= 64 + 1
