"""Replacement-policy tests: exact LRU vs tree-PLRU vs random."""

import numpy as np
import pytest

from repro.mem.cache import Cache, CacheConfig, MemoryPort


def make(replacement, sets=1, ways=4):
    return Cache(CacheConfig(sets=sets, ways=ways, replacement=replacement),
                 MemoryPort(latency=50))


def lines(*idx):
    return [i * 64 for i in idx]


@pytest.mark.parametrize("policy", ["lru", "plru", "random"])
def test_hits_work_under_every_policy(policy):
    c = make(policy)
    t = 0
    for a in lines(0, 1, 2, 3):
        t = c.access(a, t) + 1
    for a in lines(0, 1, 2, 3):
        t = c.access(a, t) + 1
    assert c.stats.hits == 4
    assert c.stats.misses == 4


def test_plru_requires_pow2_ways():
    with pytest.raises(ValueError):
        CacheConfig(ways=3, replacement="plru")
    with pytest.raises(ValueError):
        CacheConfig(replacement="fifo")


def test_invalid_ways_filled_first():
    for policy in ("lru", "plru", "random"):
        c = make(policy)
        t = 0
        for a in lines(0, 1, 2, 3):
            t = c.access(a, t) + 1
        # all four distinct lines resident: no early eviction
        assert c.resident_lines() == 4, policy


def test_plru_victim_is_not_recently_used():
    c = make("plru", ways=4)
    t = 0
    for a in lines(0, 1, 2, 3):
        t = c.access(a, t) + 1
    # touch 0 and 1 again: the PLRU tree now points at the 2/3 half
    t = c.access(lines(0)[0], t) + 1
    t = c.access(lines(1)[0], t) + 1
    t = c.access(lines(9)[0], t) + 1  # forces an eviction
    assert c.contains(0) and c.contains(64)  # the recently-used pair survives


def test_plru_approximates_lru_on_scans():
    """On a cyclic scan over ways+1 lines, both LRU and PLRU thrash."""
    results = {}
    for policy in ("lru", "plru"):
        c = make(policy, ways=4)
        t = 0
        for rep in range(10):
            for a in lines(0, 1, 2, 3, 4):
                t = c.access(a, t) + 1
        results[policy] = c.stats.misses
    assert results["lru"] == 50          # LRU thrashes completely
    assert results["plru"] >= 30         # PLRU mostly thrashes too


def test_random_policy_deterministic_per_instance():
    def run():
        c = make("random", ways=4)
        t = 0
        for rep in range(6):
            for a in lines(0, 1, 2, 3, 4, 5):
                t = c.access(a, t) + 1
        return c.stats.misses

    assert run() == run()


def test_random_breaks_pathological_scan():
    """Random replacement keeps *some* hits on a ways+1 cyclic scan where
    exact LRU gets zero — the classic argument for it."""
    lru_c, rnd_c = make("lru", ways=4), make("random", ways=4)
    t = 0
    for rep in range(20):
        for a in lines(0, 1, 2, 3, 4):
            t = lru_c.access(a, t) + 1
            t = rnd_c.access(a, t) + 1
    assert lru_c.stats.hits == 0
    assert rnd_c.stats.hits > 5
