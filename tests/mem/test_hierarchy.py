"""Uncore/TilePort assembly tests: construction variants, miss paths,
page-table walks, and shared-state behaviour."""

import pytest

from repro.mem.cache import CacheConfig
from repro.mem.dram import DDR4_3200_4CH, DRAMConfig
from repro.mem.hierarchy import HierarchyConfig, TilePort, Uncore, build_uncore


def small_cfg(**kw):
    base = dict(
        l1i=CacheConfig(sets=16, ways=2, hit_latency=1),
        l1d=CacheConfig(sets=16, ways=2, hit_latency=2),
        l2=CacheConfig(sets=64, ways=4, hit_latency=10),
        core_ghz=1.0,
    )
    base.update(kw)
    return HierarchyConfig(**base)


def test_no_llc_single_dram():
    u = Uncore(small_cfg())
    assert u.llc is None
    assert len(u.drams) == 1


def test_llc_slices_split_channels():
    import dataclasses

    cfg = small_cfg(
        dram=dataclasses.replace(DDR4_3200_4CH),
        llc_bytes=4 << 20,
        llc_slices=4,
    )
    u = Uncore(cfg)
    assert len(u.drams) == 4
    assert all(d.cfg.channels == 1 for d in u.drams)
    assert len(u.llc.slices) == 4


def test_llc_slice_channel_mismatch_rejected():
    cfg = small_cfg(dram=DRAMConfig(channels=2), llc_bytes=4 << 20,
                    llc_slices=3)
    with pytest.raises(ValueError):
        Uncore(cfg)


def test_miss_path_reaches_dram():
    u = build_uncore(small_cfg())
    port = TilePort(u, tile_id=0)
    port.dload(0x5000, 0)
    assert u.l2.stats.accesses == 1 or u.l2.stats.accesses >= 1
    assert u.dram_stats()["reads"] >= 1


def test_l1_hit_does_not_touch_uncore():
    u = build_uncore(small_cfg())
    port = TilePort(u, tile_id=0)
    t = port.dload(0x5000, 0)
    before = u.l2.stats.accesses
    port.dload(0x5000, t + 1)
    assert u.l2.stats.accesses == before


def test_page_walk_reads_through_l2():
    u = build_uncore(small_cfg())
    port = TilePort(u, tile_id=0)
    before = u.l2.stats.accesses
    port.dload(0x9999_0000, 0)  # TLB cold: triggers a walk
    walk_accesses = u.l2.stats.accesses - before
    assert walk_accesses >= 2  # walker loads + the line fill


def test_two_tiles_share_l2_contents():
    u = build_uncore(small_cfg(coherence=False))
    a = TilePort(u, tile_id=0)
    b = TilePort(u, tile_id=1)
    t = a.dload(0x7000, 0)
    dram_before = u.dram_stats()["reads"]
    b.dload(0x7000, t + 50)  # misses its own L1, hits the shared L2
    assert u.dram_stats()["reads"] == dram_before


def test_directory_tracks_cross_tile_sharing():
    """The snoop directory records which tiles installed each line.

    Store *timing* effects are priced only for writes that reach the
    shared level (write-through forwards and dirty writebacks) — store
    misses fill with plain reads, not RFOs; see the documented limitation
    in repro.mem.coherence.  The paper's MPI workloads never share lines,
    so the inert path is intentional."""
    u = build_uncore(small_cfg(coherence=True))
    a = TilePort(u, tile_id=0)
    b = TilePort(u, tile_id=1)
    t = a.dload(0x8000, 0)
    b.dload(0x8000, t + 50)
    assert u.directory.sharers_of(0x8000 // 64) == 0b11


def test_flush_clears_tile_state():
    u = build_uncore(small_cfg())
    port = TilePort(u, tile_id=0)
    port.dload(0x5000, 0)
    port.flush()
    assert port.l1d.resident_lines() == 0
    assert port.l1i.resident_lines() == 0


def test_reset_stats():
    u = build_uncore(small_cfg())
    port = TilePort(u, tile_id=0)
    port.dload(0xA000, 0)
    u.reset_stats()
    assert u.l2.stats.accesses == 0
    assert u.dram_stats()["reads"] == 0
