"""Unit tests for the set-associative cache timing model."""

import numpy as np
import pytest

from repro.mem.cache import Cache, CacheConfig, MemoryPort


def make(sets=4, ways=2, latency=100, **kw):
    mem = MemoryPort(latency=latency)
    cache = Cache(CacheConfig(sets=sets, ways=ways, **kw), mem)
    return cache, mem


def test_cold_miss_then_hit():
    c, mem = make()
    t1 = c.access(0x1000, 0)
    assert t1 >= 100  # went to memory
    t2 = c.access(0x1000, t1)
    assert t2 == t1 + c.cfg.hit_latency
    assert c.stats.hits == 1 and c.stats.misses == 1


def test_same_line_different_offsets_hit():
    c, _ = make()
    t = c.access(0x1000, 0)
    assert c.access(0x1010, t) == t + c.cfg.hit_latency
    # the bank is busy for cycle_time after the previous access
    t2 = t + c.cfg.cycle_time
    assert c.access(0x103F, t2) == t2 + c.cfg.hit_latency


def test_lru_eviction_order():
    c, _ = make(sets=1, ways=2)
    # fill both ways of the single set
    c.access(0 * 64, 0)
    c.access(1 * 64, 1000)
    # touch line 0 so line 1 is LRU
    c.access(0 * 64, 2000)
    # a new line evicts line 1
    c.access(2 * 64, 3000)
    assert c.contains(0 * 64)
    assert not c.contains(1 * 64)
    assert c.contains(2 * 64)


def test_capacity_exact():
    c, _ = make(sets=4, ways=2)
    # 8 distinct lines fill the cache completely
    for i in range(8):
        c.access(i * 64, i * 1000)
    assert c.resident_lines() == 8
    t = 100_000
    for i in range(8):
        assert c.access(i * 64, t) == t + c.cfg.hit_latency
        t += 10


def test_conflict_misses_in_one_set():
    c, _ = make(sets=4, ways=2)
    # lines mapping to set 0: stride = sets*line = 256
    addrs = [i * 256 for i in range(3)]  # 3 lines, 2 ways -> thrash
    t = 0
    for _ in range(4):
        for a in addrs:
            t = c.access(a, t)
    assert c.stats.misses > 3  # conflict misses beyond the cold ones


def test_writeback_on_dirty_eviction():
    c, mem = make(sets=1, ways=1)
    c.access(0, 0, is_store=True)
    base = mem.accesses
    c.access(64, 10_000)  # evicts dirty line 0
    assert c.stats.writebacks == 1
    assert mem.accesses == base + 2  # fill + writeback


def test_clean_eviction_no_writeback():
    c, mem = make(sets=1, ways=1)
    c.access(0, 0)
    c.access(64, 10_000)
    assert c.stats.writebacks == 0


def test_write_through_store_forwards():
    c, mem = make(write_back=False)
    t = c.access(0x2000, 0)           # load fill
    base = mem.accesses
    c.access(0x2000, t, is_store=True)  # store hit forwards to memory
    assert mem.accesses == base + 1
    assert c.stats.writebacks == 0


def test_inflight_line_hit_waits_for_fill():
    c, _ = make(latency=500)
    t1 = c.access(0x3000, 0)
    # second access to the same line issued before the fill returns: the
    # tag matches (hit) but data arrives only with the fill
    t2 = c.access(0x3008, 1)
    assert t2 == t1
    assert c.stats.hits == 1
    assert c.stats.misses == 1


def test_mshr_merge_on_conflicting_inflight_miss():
    # two misses to *different* lines that map to the same set, where the
    # second line is genuinely distinct: both allocate MSHRs
    c, _ = make(sets=4, ways=2, latency=500)
    c.access(0x0000, 0)
    c.access(0x1000, 1)
    assert c.stats.misses == 2


def test_mshr_limit_stalls():
    c, _ = make(sets=16, ways=2, mshrs=2, latency=500)
    # 4 distinct-line misses at t=0: only 2 MSHRs -> 3rd/4th stall
    finishes = [c.access(i * 64, 0) for i in range(4)]
    assert finishes[2] > finishes[0]
    assert c.stats.mshr_stall_cycles > 0


def test_bank_conflicts_counted():
    c, _ = make(sets=8, ways=2, banks=2, cycle_time=2)
    c.access(0 * 64, 0)
    c.warm([0, 128])
    c.access(0 * 64, 10_000)
    c.access(2 * 64, 10_000)  # same bank (line 2 % 2 == 0), same time
    assert c.stats.bank_conflict_cycles > 0


def test_warm_installs_without_stats():
    c, _ = make()
    c.warm(np.arange(0, 512, 64))
    assert c.stats.accesses == 0
    t = c.access(0, 0)
    assert t == c.cfg.hit_latency
    assert c.stats.hits == 1


def test_flush_invalidates():
    c, _ = make()
    c.access(0x100, 0)
    c.flush()
    assert not c.contains(0x100)
    assert c.resident_lines() == 0


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(sets=3)
    with pytest.raises(ValueError):
        CacheConfig(sets=0)
    with pytest.raises(ValueError):
        CacheConfig(line_bytes=48)


def test_size_bytes():
    assert CacheConfig(sets=64, ways=8, line_bytes=64).size_bytes == 32 * 1024


def test_miss_rate_stat():
    c, _ = make()
    c.access(0, 0)
    c.access(0, 1000)
    assert c.stats.miss_rate == pytest.approx(0.5)
