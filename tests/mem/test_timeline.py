"""OccupancyTimeline tests: earliest-fit booking under out-of-order requests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.timeline import OccupancyTimeline


def test_empty_reserve_starts_on_time():
    t = OccupancyTimeline()
    assert t.reserve(100, 5) == 100
    assert t.busy_until() == 105


def test_back_to_back_serialises():
    t = OccupancyTimeline()
    assert t.reserve(0, 4) == 0
    assert t.reserve(0, 4) == 4
    assert t.reserve(0, 4) == 8


def test_out_of_order_requests_use_real_gaps():
    """The phantom-contention fix: a lagging requester slots in *before*
    a reservation made far in its future."""
    t = OccupancyTimeline()
    t.reserve(1000, 10)       # a far-ahead rank books [1000, 1010)
    start = t.reserve(50, 10)  # a lagging rank must not wait for it
    assert start == 50


def test_gap_too_small_is_skipped():
    t = OccupancyTimeline()
    t.reserve(10, 10)   # [10, 20)
    t.reserve(25, 10)   # [25, 35)
    # a 10-wide request at t=12: gap [20, 25) is too small -> lands at 35
    assert t.reserve(12, 10) == 35


def test_exact_fit_gap_is_used():
    t = OccupancyTimeline()
    t.reserve(10, 10)   # [10, 20)
    t.reserve(30, 10)   # [30, 40)
    assert t.reserve(0, 10) == 0    # [0, 10) exact fit before everything
    assert t.reserve(15, 10) == 20  # [20, 30) exact fit between


def test_zero_duration_is_free():
    t = OccupancyTimeline()
    t.reserve(0, 100)
    assert t.reserve(50, 0) == 50


def test_pruning_bounds_memory():
    t = OccupancyTimeline(max_intervals=16)
    for i in range(1000):
        t.reserve(i * 10, 5)
    assert len(t) <= 16


def test_validation():
    with pytest.raises(ValueError):
        OccupancyTimeline(max_intervals=2)


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 50)),
                min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_reservations_never_overlap(requests):
    """Property: booked intervals are pairwise disjoint and each starts at
    or after its requested time."""
    t = OccupancyTimeline(max_intervals=10_000)
    booked = []
    for time, dur in requests:
        start = t.reserve(time, dur)
        assert start >= time
        booked.append((start, start + dur))
    booked.sort()
    for (s1, e1), (s2, e2) in zip(booked, booked[1:]):
        assert e1 <= s2, f"overlap: [{s1},{e1}) and [{s2},{e2})"
