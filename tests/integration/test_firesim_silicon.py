"""Integration tests: FireSim manager, silicon boards, and end-to-end flows."""

import numpy as np
import pytest

from repro.firesim import BXE_U250, FireSimManager, HostModel, host_model_for
from repro.isa import Interpreter, assemble
from repro.silicon import Board, banana_pi, milkv_pioneer
from repro.smpi.comm import Comm
from repro.soc import BANANA_PI_HW, BANANA_PI_SIM, MILKV_SIM, ROCKET1
from repro.workloads.microbench import get_kernel


def small_trace():
    return get_kernel("EI").build(scale=0.05)


# ------------------------------------------------------------ host model

def test_host_model_wall_clock():
    h = HostModel(name="t", host_mhz=60.0, efficiency=1.0)
    # 60M target cycles at 60 MHz = 1 second
    assert h.wall_seconds(60_000_000) == pytest.approx(1.0)
    assert h.slowdown(1.6) == pytest.approx(26.67, rel=0.01)


def test_host_model_validation():
    with pytest.raises(ValueError):
        HostModel(name="t", host_mhz=0)
    with pytest.raises(ValueError):
        HostModel(name="t", host_mhz=60, efficiency=1.5)


def test_host_model_for_silicon_rejected():
    with pytest.raises(ValueError):
        host_model_for(BANANA_PI_HW)


def test_bxe_cluster_spec():
    assert BXE_U250().nodes == 22


# ------------------------------------------------------------ manager

def test_manager_rejects_silicon():
    with pytest.raises(ValueError):
        FireSimManager(BANANA_PI_HW)


def test_manager_trace_report():
    mgr = FireSimManager(ROCKET1)
    rep = mgr.run_trace(small_trace())
    assert rep.design == "Rocket1"
    assert rep.target_cycles > 0
    assert rep.host_seconds > rep.target_seconds  # simulation is slower
    assert rep.slowdown > 20
    assert "Rocket1" in str(rep)


def test_manager_mpi_report():
    def program(comm: Comm):
        yield from comm.compute(small_trace())
        yield from comm.barrier()
        return None

    mgr = FireSimManager(ROCKET1)
    rep = mgr.run_mpi(4, program)
    assert len(rep.ranks) == 4
    assert rep.instructions > 0


def test_manager_reset():
    mgr = FireSimManager(ROCKET1)
    r1 = mgr.run_trace(small_trace())
    mgr.reset()
    r2 = mgr.run_trace(small_trace())
    assert r1.target_cycles == r2.target_cycles  # cold-state reproducible


# ------------------------------------------------------------ boards

def test_board_rejects_firesim_design():
    with pytest.raises(ValueError):
        Board(BANANA_PI_SIM)


def test_board_factories():
    assert banana_pi().config.name == "BananaPi-K1"
    assert milkv_pioneer().config.name == "MILKV-SG2042"


def test_board_time_trace():
    m = banana_pi().time_trace(small_trace())
    assert m.seconds > 0
    assert "BananaPi-K1" in str(m)


def test_board_time_mpi():
    def program(comm: Comm):
        yield from comm.compute(small_trace())
        return comm.rank

    m = milkv_pioneer().time_mpi(2, program)
    assert m.seconds > 0
    assert [r.value for r in m.ranks] == [0, 1]


# ------------------------------------------------- assembled code end-to-end

def test_assembled_program_through_firesim():
    """Real RV64 machine code -> interpreter trace -> FireSim timing."""
    words = assemble(
        """
            li a0, 0
            li a1, 300
        loop:
            add a0, a0, a1
            addi a1, a1, -1
            bnez a1, loop
            ecall
        """
    )
    interp = Interpreter(words)
    trace = interp.run()
    assert interp.reg("a0") == sum(range(1, 301))

    sim = FireSimManager(ROCKET1).run_trace(trace)
    hw = banana_pi().time_trace(trace)
    assert sim.target_cycles > 0
    # the counted loop is fully predictable: both run near their issue width
    assert hw.seconds <= sim.target_seconds


def test_same_trace_ranks_configs_consistently():
    """A DRAM-bound chase should be slower (in seconds) on every FireSim
    model than on the hardware references."""
    t = get_kernel("MM").build(scale=0.05)
    sim_s = FireSimManager(MILKV_SIM).run_trace(t).target_seconds
    hw_s = milkv_pioneer().time_trace(t, warmup=False).seconds
    assert hw_s < sim_s
