"""Cross-module integration scenarios: serialization -> perf, compiler ->
manager, fragments -> applications, roofline consistency."""

import numpy as np
import pytest

from repro.analysis import machine_roofs, perf_stat, roofline_point
from repro.firesim import FireSimManager
from repro.isa import Interpreter, assemble, load_trace, save_trace
from repro.soc import (
    BANANA_PI_SIM,
    ROCKET1,
    System,
    WithClock,
    WithL2Banks,
    compose,
)
from repro.workloads.compiler import GCC_9_4
from repro.workloads.microbench import get_kernel
from repro.workloads.npb import run_ep


def test_saved_trace_perf_stat_roundtrip(tmp_path):
    t = get_kernel("DP1d").build(scale=0.05)
    path = tmp_path / "dp1d.npz"
    save_trace(t, path)
    direct = perf_stat(ROCKET1, t)
    loaded = perf_stat(ROCKET1, load_trace(path))
    assert direct.cycles == loaded.cycles
    assert direct.l1d_loads_misses == loaded.l1d_loads_misses


def test_compiler_transform_through_manager():
    t = get_kernel("EI").build(scale=0.05)
    old = GCC_9_4.transform(t)
    mgr_new, mgr_old = FireSimManager(ROCKET1), FireSimManager(ROCKET1)
    rep_new = mgr_new.run_trace(t)
    rep_old = mgr_old.run_trace(old)
    assert rep_old.target_cycles > rep_new.target_cycles
    assert rep_old.instructions > rep_new.instructions


def test_composed_config_runs_verified_application():
    cfg = compose(ROCKET1, WithL2Banks(2), WithClock(2.0), name="Custom")
    res = run_ep(cfg, nranks=2, cls="S")
    assert res.verified
    assert res.core_ghz == 2.0


def test_assembled_fp_code_times_everywhere():
    """RV64 FP assembly -> trace -> every core style."""
    words = assemble(
        """
            li t0, 0
            li t1, 50
            fcvt.d.l fa0, x0
        loop:
            fcvt.d.l fa1, t0
            fmadd.d fa0, fa1, fa1, fa0    # sum of squares
            addi t0, t0, 1
            bne t0, t1, loop
            ecall
        """
    )
    interp = Interpreter(words)
    trace = interp.run()
    expected = sum(i * i for i in range(50))
    assert interp.freg("fa0") == float(expected)
    from repro.soc import MILKV_SIM

    r_in = System(ROCKET1).run(trace)
    r_ooo = System(MILKV_SIM).run(trace)
    assert r_in.instructions == r_ooo.instructions == len(trace)
    # the serial FMA chain bounds both cores near fp_fma latency per iter
    assert r_in.cycles >= 50 * 4
    assert r_ooo.cycles >= 50 * 4


def test_roofline_consistent_with_perf():
    t = get_kernel("EF").build(scale=0.1)
    p = roofline_point(BANANA_PI_SIM, t, kernel="EF")
    rep = perf_stat(BANANA_PI_SIM, t)
    # the roofline's achieved GFLOP/s must match perf's counters
    flops = t.stats().fp_ops
    gflops = flops / rep.seconds / 1e9
    assert p.achieved_gflops == pytest.approx(gflops, rel=0.02)
    roofs = machine_roofs(BANANA_PI_SIM)
    assert p.achieved_gflops <= roofs.peak_gflops


def test_deterministic_full_pipeline():
    """Same seed -> identical kernel, identical cycles, twice."""

    def run_once():
        t = get_kernel("CCh").build(scale=0.05, seed=11)
        return System(ROCKET1).run(t).cycles

    assert run_once() == run_once()
