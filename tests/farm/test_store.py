"""SharedResultStore: LRU budgets, durable stats, concurrent writers."""

import json
import multiprocessing
import os

from repro.farm import Job, cache_key
from repro.farm.store import SharedResultStore, StoreStats
from repro.soc import ROCKET1

_FORK = multiprocessing.get_context("fork")


def kernel_job(**kw):
    defaults = dict(name="EI", scale=0.05, seed=0)
    defaults.update(kw)
    return Job.kernel(ROCKET1, defaults.pop("name"), **defaults)


def fill(store, n, start=0):
    """Insert *n* distinct entries; returns their keys oldest-first."""
    keys = []
    for i in range(start, start + n):
        job = kernel_job(seed=i)
        key = cache_key(job)
        store.put(key, job, {"cycles": i})
        # deterministic LRU order regardless of filesystem mtime resolution
        os.utime(store.path(key), (i, i))
        keys.append(key)
    return keys


# ---------------------------------------------------------------- budgets

def test_entry_budget_evicts_oldest_first(tmp_path):
    store = SharedResultStore(tmp_path, max_entries=3)
    keys = fill(store, 5)
    assert len(store) == 3
    assert all(store.path(k).exists() for k in keys[2:])
    assert not any(store.path(k).exists() for k in keys[:2])
    assert store.local.evictions == 2


def test_byte_budget_evicts_until_it_fits(tmp_path):
    probe = SharedResultStore(tmp_path)
    (key,) = fill(probe, 1)
    entry_bytes = probe.path(key).stat().st_size
    probe.path(key).unlink()

    store = SharedResultStore(tmp_path, max_bytes=2 * entry_bytes)
    fill(store, 4)
    entries, nbytes = store.usage()
    assert nbytes <= 2 * entry_bytes
    assert entries <= 2


def test_hit_freshens_lru_position(tmp_path):
    store = SharedResultStore(tmp_path, max_entries=2)
    keys = fill(store, 2)
    assert store.get(keys[0]) is not None  # freshen the older entry
    fill(store, 1, start=10)               # force one eviction
    assert store.path(keys[0]).exists()
    assert not store.path(keys[1]).exists()


def test_fresh_insert_is_protected_from_eviction(tmp_path):
    store = SharedResultStore(tmp_path, max_entries=1)
    keys = fill(store, 3)
    assert [k for k in keys if store.path(k).exists()] == [keys[-1]]


def test_unbounded_store_never_evicts(tmp_path):
    store = SharedResultStore(tmp_path)
    fill(store, 4)
    assert len(store) == 4
    assert store.evict() == 0


# ------------------------------------------------------------------ stats

def test_stats_persist_across_instances(tmp_path):
    a = SharedResultStore(tmp_path)
    (key,) = fill(a, 1)
    a.get(key)
    a.get("f" * 64)
    b = SharedResultStore(tmp_path)
    snap = b.stats_snapshot().data["store"]
    assert snap["inserts"] == 1 and snap["hits"] == 1 and snap["misses"] == 1
    assert snap["hit_rate"] == 0.5
    assert snap["entries"] == 1
    # local counters are per-instance, persisted ones are shared
    assert b.local == StoreStats()


def test_corrupt_stats_file_reads_as_zero(tmp_path):
    store = SharedResultStore(tmp_path)
    fill(store, 1)
    store.stats_path.write_text("{ torn")
    snap = store.stats_snapshot().data["store"]
    assert snap["inserts"] == 0
    store.get("f" * 64)  # still able to bump from the zero baseline
    assert store.stats_snapshot().data["store"]["misses"] == 1


# ----------------------------------------------------- concurrent writers

def _disjoint_worker(root, proc, n):
    store = SharedResultStore(root)
    for i in range(n):
        job = kernel_job(seed=1000 * proc + i)
        key = cache_key(job)
        assert store.get(key) is None
        store.put(key, job, {"cycles": 1000 * proc + i})
        assert store.get(key) == {"cycles": 1000 * proc + i}


def _run_all(procs):
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0


def test_concurrent_writers_no_lost_or_double_counted_stats(tmp_path):
    """Two processes hammer one store; every counter is exactly additive."""
    nproc, per = 2, 6
    _run_all([_FORK.Process(target=_disjoint_worker,
                            args=(tmp_path, p, per))
              for p in range(nproc)])
    store = SharedResultStore(tmp_path)
    snap = store.stats_snapshot().data["store"]
    assert snap["misses"] == nproc * per
    assert snap["inserts"] == nproc * per
    assert snap["hits"] == nproc * per
    assert snap["entries"] == nproc * per
    assert snap["evictions"] == 0


def _same_key_worker(root, rounds):
    store = SharedResultStore(root)
    job = kernel_job(seed=7)
    key = cache_key(job)
    for _ in range(rounds):
        store.put(key, job, {"cycles": 7})
        got = store.get(key)
        assert got == {"cycles": 7}, got


def test_concurrent_same_key_writers_never_corrupt(tmp_path):
    """Racing writers of one key: the entry stays valid, reads never see
    a torn file, and nothing lands in quarantine."""
    rounds = 10
    _run_all([_FORK.Process(target=_same_key_worker, args=(tmp_path, rounds))
              for _ in range(2)])
    store = SharedResultStore(tmp_path)
    key = cache_key(kernel_job(seed=7))
    doc = json.loads(store.path(key).read_text(encoding="utf-8"))
    assert doc["payload"] == {"cycles": 7}
    assert not store.quarantine_dir.exists()
    snap = store.stats_snapshot().data["store"]
    assert snap["inserts"] == 2 * rounds
    assert snap["hits"] == 2 * rounds


def _evicting_worker(root, proc, n, budget):
    store = SharedResultStore(root, max_entries=budget)
    for i in range(n):
        job = kernel_job(seed=1000 * proc + i)
        store.put(cache_key(job), job, {"cycles": i})


def test_concurrent_eviction_accounts_every_entry_once(tmp_path):
    """Two evicting writers never double-delete: on-disk entries plus
    counted evictions equal counted inserts exactly."""
    nproc, per, budget = 2, 8, 4
    _run_all([_FORK.Process(target=_evicting_worker,
                            args=(tmp_path, p, per, budget))
              for p in range(nproc)])
    store = SharedResultStore(tmp_path, max_entries=budget)
    snap = store.stats_snapshot().data["store"]
    assert snap["entries"] <= budget
    assert snap["inserts"] == nproc * per
    assert snap["evictions"] + snap["entries"] == snap["inserts"]
