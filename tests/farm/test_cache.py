"""Result-cache tests: content addressing, round-trips, invalidation."""

import json

import pytest

from repro.farm import Job, ResultCache, cache_key, execute_job
from repro.soc import ROCKET1, ROCKET2, compose
from repro.soc.fragments import WithL2Banks


def kernel_job(**kw):
    defaults = dict(config=ROCKET1, name="EI", scale=0.05, seed=0)
    defaults.update(kw)
    return Job.kernel(defaults.pop("config"), defaults.pop("name"), **defaults)


def test_key_is_deterministic_and_hex():
    a, b = cache_key(kernel_job()), cache_key(kernel_job())
    assert a == b
    assert len(a) == 64 and int(a, 16) >= 0


@pytest.mark.parametrize("other", [
    kernel_job(config=ROCKET2),
    kernel_job(name="MM"),
    kernel_job(seed=1),
    kernel_job(scale=0.1),
    kernel_job(warmup=False),
])
def test_key_changes_with_any_identity_field(other):
    assert cache_key(kernel_job()) != cache_key(other)


def test_key_sees_through_config_name_collisions():
    """Composed variants hash the full config tree, not just the name."""
    banked = compose(ROCKET1, WithL2Banks(8), name=ROCKET1.name)
    assert banked.name == ROCKET1.name
    assert cache_key(Job.kernel(banked, "EI", scale=0.05)) != \
        cache_key(kernel_job())


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    job = kernel_job()
    key = cache_key(job)
    assert cache.get(key) is None and key not in cache
    payload = execute_job(job)
    cache.put(key, job, payload)
    assert cache.get(key) == payload
    assert key in cache and len(cache) == 1


def test_memo_hit_keeps_job_identity_metadata():
    """The in-process payload memo is content-addressed on the built
    trace; a seed-invariant kernel (EI's trace ignores the seed) must
    still report each job's own seed, not the first caller's."""
    payloads = [execute_job(kernel_job(seed=s)) for s in (30, 31, 32)]
    assert [p["seed"] for p in payloads] == [30, 31, 32]
    # simulation outputs are genuinely shared across the collision
    assert len({p["cycles"] for p in payloads}) == 1


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    job = kernel_job()
    key = cache_key(job)
    cache.put(key, job, {"cycles": 1})
    path = cache.path(key)
    path.write_text("{ truncated")
    assert cache.get(key) is None
    # wrong-key entry (e.g. renamed file) is also a miss
    path.write_text(json.dumps({"key": "0" * 64, "payload": {"cycles": 1}}))
    assert cache.get(key) is None


def test_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in range(3):
        job = kernel_job(seed=seed)
        cache.put(cache_key(job), job, {"cycles": seed})
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_selftest_jobs_are_not_cacheable():
    assert Job.selftest("ok").cacheable is False
    assert kernel_job().cacheable is True


def test_quantum_is_part_of_job_identity():
    """Lockstep timing differs from the monolithic path, so a quantum'd
    job must never collide with a plain one (or a different quantum)."""
    plain = kernel_job()
    assert "quantum" not in dict(plain.params)  # legacy keys unchanged
    q512 = kernel_job(quantum=512)
    q1024 = kernel_job(quantum=1024)
    keys = {cache_key(plain), cache_key(q512), cache_key(q1024),
            cache_key(kernel_job(quantum=512, chunk=64))}
    assert len(keys) == 4
    assert cache_key(q512) == cache_key(kernel_job(quantum=512))


def test_quarantine_counts_and_preserves_evidence(tmp_path):
    cache = ResultCache(tmp_path)
    job = kernel_job()
    key = cache_key(job)
    cache.put(key, job, {"cycles": 1})
    cache.path(key).write_text("{ truncated")
    assert cache.get(key) is None
    assert cache.corrupt_quarantined == 1
    moved = list(cache.quarantine_dir.glob("*.json"))
    assert len(moved) == 1 and moved[0].read_text() == "{ truncated"
    # schema-mismatch entries (version skew) are quarantined too
    cache.put(key, job, {"cycles": 1})
    entry = json.loads(cache.path(key).read_text())
    entry["schema"] = -1
    cache.path(key).write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert cache.corrupt_quarantined == 2
