"""Deploy managers: slot accounting, determinism, backend bit-identity."""

import json

import pytest

from repro.farm import Job, RunFarm
from repro.farm.deploy import (
    DeployManager,
    ExternallyProvisionedDeployManager,
    HostSpec,
    LocalDeployManager,
    parse_deploy_spec,
    resolve_deploy,
)
from repro.soc import ROCKET1, ROCKET2


# -------------------------------------------------------------- inventory

def test_host_spec_validates():
    with pytest.raises(ValueError):
        HostSpec("")
    with pytest.raises(ValueError):
        HostSpec("a", 0)
    with pytest.raises(ValueError):
        DeployManager([])
    with pytest.raises(ValueError):
        DeployManager([HostSpec("a"), HostSpec("a")])


def test_local_pool_slot_accounting():
    dep = LocalDeployManager(2)
    assert (dep.total_slots, dep.free_slots) == (2, 2)
    assert dep.acquire() == "local"
    assert dep.acquire() == "local"
    assert dep.acquire() is None          # saturated
    assert dep.busy_slots == 2
    dep.release("local")
    assert dep.acquire() == "local"
    with pytest.raises(ValueError):
        dep.release("nope")


def test_release_of_idle_host_raises():
    dep = LocalDeployManager(1)
    with pytest.raises(ValueError):
        dep.release("local")


def test_external_fleet_spreads_by_occupancy_fraction():
    dep = ExternallyProvisionedDeployManager([("a", 2), ("b", 4)])
    # least-loaded fraction wins; declaration order breaks ties
    got = [dep.acquire() for _ in range(6)]
    assert got == ["a", "b", "b", "a", "b", "b"]
    assert dep.acquire() is None
    dep.release("b")
    assert dep.acquire() == "b"


def test_acquire_sequence_is_deterministic():
    def seq():
        dep = ExternallyProvisionedDeployManager([("x", 3), ("y", 1)])
        out = [dep.acquire() for _ in range(4)]
        dep.release("x")
        out.append(dep.acquire())
        return out

    assert seq() == seq()


def test_describe_inventory():
    dep = ExternallyProvisionedDeployManager([("a", 2), ("b", 1)])
    dep.acquire()
    doc = dep.describe()
    assert doc["kind"] == "externally-provisioned"
    assert doc["total_slots"] == 3
    assert doc["hosts"] == [
        {"name": "a", "slots": 2, "busy": 1, "state": "healthy",
         "consecutive_failures": 0, "failures": 0, "successes": 0,
         "quarantines": 0},
        {"name": "b", "slots": 1, "busy": 0, "state": "healthy",
         "consecutive_failures": 0, "failures": 0, "successes": 0,
         "quarantines": 0},
    ]
    json.dumps(doc)  # manifest-able


# ------------------------------------------------------------- host health

def _fleet(**kw):
    return ExternallyProvisionedDeployManager([("a", 1), ("b", 1)], **kw)


def test_breaker_walks_healthy_suspect_quarantined():
    dep = _fleet(suspect_after=2, quarantine_after=3)
    dep.report_failure("a")
    assert dep.health("a").state == "healthy"
    dep.report_failure("a")
    assert dep.health("a").state == "suspect"
    dep.report_failure("a")
    assert dep.health("a").state == "quarantined"
    assert dep.quarantined_hosts() == ["a"]
    assert dep.health("a").quarantines == 1


def test_job_intrinsic_failures_never_count_against_host():
    dep = _fleet(suspect_after=1, quarantine_after=1)
    for _ in range(5):
        dep.report_failure("a", job_intrinsic=True)
    hh = dep.health("a")
    assert (hh.state, hh.failures, hh.consecutive_failures) == ("healthy", 0, 0)


def test_success_closes_the_breaker():
    dep = _fleet(suspect_after=1, quarantine_after=2)
    dep.report_failure("a")
    assert dep.health("a").state == "suspect"
    dep.report_success("a")
    hh = dep.health("a")
    assert (hh.state, hh.consecutive_failures) == ("healthy", 0)
    assert hh.failures == 1          # lifetime count survives


def test_suspect_host_is_last_resort():
    dep = _fleet(suspect_after=1, quarantine_after=2)
    dep.report_failure("b")
    assert dep.health("b").state == "suspect"
    # healthy a wins even though b comes later in a least-loaded tie
    assert dep.acquire() == "a"
    # ...but a suspect host still beats refusing work
    assert dep.acquire() == "b"


def test_quarantined_host_excluded_until_probe_due():
    dep = _fleet(suspect_after=1, quarantine_after=1, probe_interval=2)
    assert dep.acquire() == "a"                      # tick 1
    dep.report_failure("a")                          # quarantined, due tick 3
    dep.release("a")
    assert dep.acquire() == "b"                      # tick 2: a is skipped
    # tick 3 reaches probe_due: a is offered as a half-open probe
    assert dep.acquire() == "a"
    assert dep.health("a").probing
    dep.report_success("a")
    dep.release("a")
    assert dep.health("a").state == "healthy"
    assert not dep.health("a").probing


def test_failed_probe_backs_off_exponentially():
    dep = _fleet(suspect_after=1, quarantine_after=1, probe_interval=2)
    assert dep.acquire() == "a"                      # tick 1
    dep.report_failure("a")                          # probe_due = 3
    dep.release("a")
    assert dep.acquire() == "b"                      # tick 2
    assert dep.acquire() == "a"                      # tick 3: probe
    dep.report_failure("a")                          # failed probe
    dep.release("a")
    hh = dep.health("a")
    assert hh.state == "quarantined"
    assert hh.quarantines == 2
    assert hh.probe_due == 3 + 2 * 2                 # interval * backoff(2)
    assert dep.acquire() is None                     # tick 4: b busy, a shut
    for _ in range(3):                               # ticks 5..7
        got = dep.acquire()
        if got is not None:
            break
    assert got == "a"                                # unlocked at tick 7


def test_all_hosts_quarantined_fails_open():
    dep = LocalDeployManager(2, suspect_after=1, quarantine_after=1,
                             probe_interval=100)
    dep.report_failure("local")
    assert dep.quarantined_hosts() == ["local"]
    # probe window is nowhere near due, but refusing would deadlock
    assert dep.acquire() == "local"
    assert dep.health("local").probing
    # one in-flight probe per host: the second slot stays shut
    assert dep.acquire() is None


# --------------------------------------------- acquire/release invariants

def test_acquire_release_property_invariants():
    """Random-but-seeded interleavings keep the slot ledger consistent."""
    import random

    fleet = [("a", 2), ("b", 3), ("c", 1)]
    for seed in range(6):
        rng = random.Random(seed)
        dep = ExternallyProvisionedDeployManager(fleet)
        held: list[str] = []
        trace: list[tuple[str, str | None]] = []
        for _ in range(120):
            if held and rng.random() < 0.4:
                h = held.pop(rng.randrange(len(held)))
                dep.release(h)
                trace.append(("rel", h))
            else:
                h = dep.acquire()
                trace.append(("acq", h))
                if h is None:
                    assert dep.free_slots == 0       # only refuses when full
                else:
                    held.append(h)
            assert dep.busy_slots == len(held)
            per_host = {d["name"]: d for d in dep.describe()["hosts"]}
            for name, slots in fleet:
                assert 0 <= per_host[name]["busy"] <= slots
        # double-release always raises, mid-sequence state notwithstanding
        dep2 = ExternallyProvisionedDeployManager(fleet)
        with pytest.raises(ValueError):
            dep2.release("a")
        # determinism: replaying the op sequence reproduces every choice
        for op, h in trace:
            if op == "acq":
                assert dep2.acquire() == h
            else:
                assert h is not None
                dep2.release(h)


# ------------------------------------------------------------ spec parsing

@pytest.mark.parametrize("spec,kind,slots", [
    ("local", "local", 1),
    ("local:8", "local", 8),
    ("hosts:a=2,b=4", "externally-provisioned", 6),
    ("hosts:a, b", "externally-provisioned", 2),
])
def test_parse_deploy_spec(spec, kind, slots):
    dep = parse_deploy_spec(spec)
    assert dep.kind == kind
    assert dep.total_slots == slots


@pytest.mark.parametrize("spec", ["", "local:x", "hosts:", "hosts:a=z", "gcp",
                                  "local:0", "local:-2"])
def test_parse_deploy_spec_rejects_garbage(spec):
    with pytest.raises(ValueError):
        parse_deploy_spec(spec)


def test_local_worker_count_is_validated_not_clamped():
    with pytest.raises(ValueError, match=">= 1 worker"):
        LocalDeployManager(0)
    with pytest.raises(ValueError, match="got -3"):
        LocalDeployManager(-3)
    with pytest.raises(ValueError, match=">= 1 worker"):
        parse_deploy_spec("local:0")


def test_resolve_deploy_precedence(monkeypatch):
    dep = LocalDeployManager(3)
    assert resolve_deploy(dep) is dep
    assert resolve_deploy("hosts:a=2").kind == "externally-provisioned"
    monkeypatch.setenv("REPRO_DEPLOY", "hosts:h1=2,h2=2")
    env_dep = resolve_deploy()
    assert env_dep.kind == "externally-provisioned"
    assert env_dep.total_slots == 4
    monkeypatch.delenv("REPRO_DEPLOY")
    assert resolve_deploy(workers=5).total_slots == 5


# ----------------------------------------------------- backend bit-identity

def _jobs():
    return [Job.kernel(cfg, k, scale=0.05)
            for cfg in (ROCKET1, ROCKET2) for k in ("EI", "Cca", "DP1f")]


def canon(results):
    return json.dumps([r.payload for r in results], sort_keys=True)


def test_backends_bit_identical_and_host_is_provenance_only():
    jobs = _jobs()
    serial = RunFarm(workers=1).run(jobs)
    local = RunFarm(deploy=LocalDeployManager(3)).run(jobs)
    fleet_dep = ExternallyProvisionedDeployManager([("fpga-a", 2),
                                                    ("fpga-b", 1)])
    fleet = RunFarm(deploy=fleet_dep).run(jobs)

    # payloads carry no trace of where they ran
    assert canon(local) == canon(serial)
    assert canon(fleet) == canon(serial)

    # ...but results do, as provenance
    assert all(r.host == "local" for r in local)
    hosts = {r.host for r in fleet}
    assert hosts <= {"fpga-a", "fpga-b"}
    assert fleet_dep.busy_slots == 0       # every slot handed back


def test_farm_manifest_records_deploy_inventory(tmp_path):
    farm = RunFarm(deploy="hosts:a=2,b=1", manifest_path=tmp_path / "m.json")
    farm.run(_jobs()[:2])
    doc = json.loads((tmp_path / "m.json").read_text())
    assert doc["deploy"]["kind"] == "externally-provisioned"
    assert [h["name"] for h in doc["deploy"]["hosts"]] == ["a", "b"]
    assert all(j["host"] in {"a", "b"} for j in doc["jobs"])
