"""Deploy managers: slot accounting, determinism, backend bit-identity."""

import json

import pytest

from repro.farm import Job, RunFarm
from repro.farm.deploy import (
    DeployManager,
    ExternallyProvisionedDeployManager,
    HostSpec,
    LocalDeployManager,
    parse_deploy_spec,
    resolve_deploy,
)
from repro.soc import ROCKET1, ROCKET2


# -------------------------------------------------------------- inventory

def test_host_spec_validates():
    with pytest.raises(ValueError):
        HostSpec("")
    with pytest.raises(ValueError):
        HostSpec("a", 0)
    with pytest.raises(ValueError):
        DeployManager([])
    with pytest.raises(ValueError):
        DeployManager([HostSpec("a"), HostSpec("a")])


def test_local_pool_slot_accounting():
    dep = LocalDeployManager(2)
    assert (dep.total_slots, dep.free_slots) == (2, 2)
    assert dep.acquire() == "local"
    assert dep.acquire() == "local"
    assert dep.acquire() is None          # saturated
    assert dep.busy_slots == 2
    dep.release("local")
    assert dep.acquire() == "local"
    with pytest.raises(ValueError):
        dep.release("nope")


def test_release_of_idle_host_raises():
    dep = LocalDeployManager(1)
    with pytest.raises(ValueError):
        dep.release("local")


def test_external_fleet_spreads_by_occupancy_fraction():
    dep = ExternallyProvisionedDeployManager([("a", 2), ("b", 4)])
    # least-loaded fraction wins; declaration order breaks ties
    got = [dep.acquire() for _ in range(6)]
    assert got == ["a", "b", "b", "a", "b", "b"]
    assert dep.acquire() is None
    dep.release("b")
    assert dep.acquire() == "b"


def test_acquire_sequence_is_deterministic():
    def seq():
        dep = ExternallyProvisionedDeployManager([("x", 3), ("y", 1)])
        out = [dep.acquire() for _ in range(4)]
        dep.release("x")
        out.append(dep.acquire())
        return out

    assert seq() == seq()


def test_describe_inventory():
    dep = ExternallyProvisionedDeployManager([("a", 2), ("b", 1)])
    dep.acquire()
    doc = dep.describe()
    assert doc["kind"] == "externally-provisioned"
    assert doc["total_slots"] == 3
    assert doc["hosts"] == [{"name": "a", "slots": 2, "busy": 1},
                            {"name": "b", "slots": 1, "busy": 0}]
    json.dumps(doc)  # manifest-able


# ------------------------------------------------------------ spec parsing

@pytest.mark.parametrize("spec,kind,slots", [
    ("local", "local", 1),
    ("local:8", "local", 8),
    ("hosts:a=2,b=4", "externally-provisioned", 6),
    ("hosts:a, b", "externally-provisioned", 2),
])
def test_parse_deploy_spec(spec, kind, slots):
    dep = parse_deploy_spec(spec)
    assert dep.kind == kind
    assert dep.total_slots == slots


@pytest.mark.parametrize("spec", ["", "local:x", "hosts:", "hosts:a=z", "gcp"])
def test_parse_deploy_spec_rejects_garbage(spec):
    with pytest.raises(ValueError):
        parse_deploy_spec(spec)


def test_resolve_deploy_precedence(monkeypatch):
    dep = LocalDeployManager(3)
    assert resolve_deploy(dep) is dep
    assert resolve_deploy("hosts:a=2").kind == "externally-provisioned"
    monkeypatch.setenv("REPRO_DEPLOY", "hosts:h1=2,h2=2")
    env_dep = resolve_deploy()
    assert env_dep.kind == "externally-provisioned"
    assert env_dep.total_slots == 4
    monkeypatch.delenv("REPRO_DEPLOY")
    assert resolve_deploy(workers=5).total_slots == 5


# ----------------------------------------------------- backend bit-identity

def _jobs():
    return [Job.kernel(cfg, k, scale=0.05)
            for cfg in (ROCKET1, ROCKET2) for k in ("EI", "Cca", "DP1f")]


def canon(results):
    return json.dumps([r.payload for r in results], sort_keys=True)


def test_backends_bit_identical_and_host_is_provenance_only():
    jobs = _jobs()
    serial = RunFarm(workers=1).run(jobs)
    local = RunFarm(deploy=LocalDeployManager(3)).run(jobs)
    fleet_dep = ExternallyProvisionedDeployManager([("fpga-a", 2),
                                                    ("fpga-b", 1)])
    fleet = RunFarm(deploy=fleet_dep).run(jobs)

    # payloads carry no trace of where they ran
    assert canon(local) == canon(serial)
    assert canon(fleet) == canon(serial)

    # ...but results do, as provenance
    assert all(r.host == "local" for r in local)
    hosts = {r.host for r in fleet}
    assert hosts <= {"fpga-a", "fpga-b"}
    assert fleet_dep.busy_slots == 0       # every slot handed back


def test_farm_manifest_records_deploy_inventory(tmp_path):
    farm = RunFarm(deploy="hosts:a=2,b=1", manifest_path=tmp_path / "m.json")
    farm.run(_jobs()[:2])
    doc = json.loads((tmp_path / "m.json").read_text())
    assert doc["deploy"]["kind"] == "externally-provisioned"
    assert [h["name"] for h in doc["deploy"]["hosts"]] == ["a", "b"]
    assert all(j["host"] in {"a", "b"} for j in doc["jobs"])
