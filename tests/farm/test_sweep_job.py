"""`Job.sweep`: the farm's config-batched sweep kind — labels, cache
descriptions, and crash-safe checkpoint/resume of a half-finished
sweep (resumed results must match a straight-through run bit for
bit)."""

from __future__ import annotations

import json

import pytest

from repro.accel import memo
from repro.farm.job import ExecContext, Job, execute_job, execute_job_meta
from repro.reliability.faults import Fault, FaultInjected
from repro.soc.presets import get_config

CFGS = [get_config("Rocket1"), get_config("Rocket2"),
        get_config("BananaPiSim")]


@pytest.fixture(autouse=True)
def _cold_caches():
    memo.clear_caches()
    yield
    memo.clear_caches()


def test_sweep_label_and_kind():
    job = Job.sweep(CFGS, "EI", scale=0.05)
    assert job.kind == "sweep"
    assert job.label == "EI@sweep[3]"
    assert job.param("scale") == 0.05


def test_sweep_rejects_empty_and_duplicate_configs():
    with pytest.raises(ValueError, match="at least one"):
        Job.sweep([], "EI")
    cfg = get_config("Rocket1")
    with pytest.raises(ValueError, match="unique names"):
        Job.sweep([cfg, cfg.with_(accel="on")], "EI")


def test_sweep_describe_is_json_clean():
    """describe() keys the result cache, so dataclass configs must
    lower to plain JSON trees."""
    job = Job.sweep(CFGS, "EI", scale=0.05)
    desc = job.describe()
    blob = json.dumps(desc, sort_keys=True)
    assert all(cfg.name in blob for cfg in CFGS)


def test_sweep_payload_matches_kernel_jobs():
    serial = {}
    for cfg in CFGS:
        serial[cfg.name] = execute_job(Job.kernel(cfg, "EI", scale=0.05))
    memo.clear_caches()
    payload = execute_job(Job.sweep(CFGS, "EI", scale=0.05))
    assert payload["kind"] == "sweep"
    assert payload["configs"] == [cfg.name for cfg in CFGS]
    assert list(payload["points"]) == payload["configs"]
    assert payload["points"] == serial


def test_sweep_repeats_with_warm_memo():
    """A second execution of the same sweep is served from the memo —
    every point must still reach the payload (memo hits fire on_point
    like freshly simulated configs; regression for a KeyError when the
    sweep job's accumulator only saw simulated points)."""
    job = Job.sweep(CFGS, "EI", scale=0.05)
    cold = execute_job(job)
    warm = execute_job(job)  # no clear_caches: all points memo-served
    assert warm == cold


def test_sweep_checkpoint_kill_resume_bit_identical(tmp_path):
    """Kill the worker after one completed config; the retry must load
    the checkpoint, batch only the remainder, report `resumed`, and
    produce the same payload as an uninterrupted run."""
    job = Job.sweep(CFGS, "EI", scale=0.05)
    straight = execute_job(job)

    memo.clear_caches()
    ctx = ExecContext(fault=Fault("kill", (("after", 1),)),
                      checkpoint_dir=tmp_path, checkpoint_every=1)
    with pytest.raises(FaultInjected):
        execute_job(job, ctx=ctx)
    ckpts = list(tmp_path.iterdir())
    assert len(ckpts) == 1
    saved = json.loads(ckpts[0].read_text())
    assert len(saved["points"]) == 1

    memo.clear_caches()
    ctx2 = ExecContext(checkpoint_dir=tmp_path, checkpoint_every=1)
    payload, meta = execute_job_meta(job, attempt=2, ctx=ctx2)
    assert meta["resumed"] is True
    assert payload == straight
    assert not list(tmp_path.iterdir())  # checkpoint removed on success
