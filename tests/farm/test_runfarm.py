"""RunFarm scheduler tests: determinism, caching, fault tolerance."""

import json

import pytest

from repro.farm import FarmEvent, Job, ResultCache, RunFarm, run_jobs
from repro.soc import BANANA_PI_HW, ROCKET1, ROCKET2

KERNELS = ("EI", "MM", "Cca", "DP1f")


def fig1_style_jobs(scale=0.05):
    """>= 8 independent kernel jobs across hardware + sim configs."""
    return [Job.kernel(cfg, k, scale=scale)
            for cfg in (BANANA_PI_HW, ROCKET1, ROCKET2) for k in KERNELS]


def canon(results):
    return json.dumps([r.payload for r in results], sort_keys=True)


# -- determinism -------------------------------------------------------------


def test_parallel_results_bit_identical_to_serial():
    jobs = fig1_style_jobs()
    assert len(jobs) >= 8
    serial = RunFarm(workers=1).run(jobs)
    for workers in (2, 4):
        parallel = RunFarm(workers=workers).run(jobs)
        assert canon(parallel) == canon(serial)
        assert [r.index for r in parallel] == list(range(len(jobs)))


def test_merge_order_is_submission_order_not_completion_order():
    # MM is ~40x slower than EI, so with 2 workers EI jobs finish first;
    # the merged list must still lead with MM
    jobs = [Job.kernel(ROCKET1, "MM", scale=0.1),
            Job.kernel(ROCKET1, "EI", scale=0.05),
            Job.kernel(ROCKET2, "EI", scale=0.05)]
    results = RunFarm(workers=2).run(jobs)
    assert [r.job.workload for r in results] == ["MM", "EI", "EI"]


# -- caching -----------------------------------------------------------------


def test_warm_cache_performs_zero_simulations(tmp_path):
    jobs = fig1_style_jobs()
    cache = ResultCache(tmp_path)

    cold_farm = RunFarm(workers=4, cache=cache)
    cold = cold_farm.run(jobs)
    assert cold_farm.stats.simulated == len(jobs)
    assert cold_farm.stats.cache_misses == len(jobs)
    assert not any(r.from_cache for r in cold)

    warm_farm = RunFarm(workers=4, cache=cache)
    warm = warm_farm.run(jobs)
    stats = warm_farm.stats
    assert stats.simulated == 0 and stats.cache_hits == len(jobs)
    assert all(r.from_cache and r.attempts == 0 for r in warm)
    assert canon(warm) == canon(cold)

    # the cache-hit counter is exposed through telemetry
    flat = stats.to_snapshot().flat()
    assert flat["farm.cache_hits"] == len(jobs)
    assert flat["farm.simulated"] == 0


def test_cache_invalidation_on_config_change(tmp_path):
    cache = ResultCache(tmp_path)
    job1 = Job.kernel(ROCKET1, "EI", scale=0.05)
    RunFarm(workers=1, cache=cache).run([job1])

    # same kernel, different config knob -> miss, not a stale hit
    job2 = Job.kernel(ROCKET2, "EI", scale=0.05)
    farm = RunFarm(workers=1, cache=cache)
    farm.run([job2])
    assert farm.stats.cache_hits == 0 and farm.stats.simulated == 1

    # the original entry still hits
    farm2 = RunFarm(workers=1, cache=cache)
    farm2.run([job1])
    assert farm2.stats.cache_hits == 1 and farm2.stats.simulated == 0


def test_cache_accepts_plain_path_and_env(tmp_path, monkeypatch):
    jobs = [Job.kernel(ROCKET1, "EI", scale=0.05)]
    farm = RunFarm(workers=1, cache=str(tmp_path))
    farm.run(jobs)
    assert farm.stats.cache_misses == 1

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    env_farm = RunFarm(workers=1)
    env_farm.run(jobs)
    assert env_farm.stats.cache_hits == 1


def test_workers_default_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert RunFarm().workers == 3
    monkeypatch.setenv("REPRO_WORKERS", "garbage")
    assert RunFarm().workers == 1


# -- fault tolerance ---------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_raising_job_is_retried_then_reported_without_sinking_sweep(workers):
    jobs = [Job.kernel(ROCKET1, "EI", scale=0.05),
            Job.selftest("raise"),
            Job.kernel(ROCKET2, "EI", scale=0.05)]
    farm = RunFarm(workers=workers, max_retries=2, backoff_s=0.01)
    results = farm.run(jobs)

    assert [r.status for r in results] == ["ok", "failed", "ok"]
    bad = results[1]
    assert bad.attempts == 3 and "injected failure" in bad.error
    assert farm.stats.retries == 2
    assert farm.stats.ok == 2 and farm.stats.failed == 1


@pytest.mark.parametrize("workers", [1, 2])
def test_flaky_job_succeeds_after_retry(workers):
    jobs = [Job.selftest("flaky", fail_times=1, value=7)]
    farm = RunFarm(workers=workers, max_retries=1, backoff_s=0.01)
    results = farm.run(jobs)
    assert results[0].ok and results[0].attempts == 2
    assert results[0].payload["value"] == 7
    assert farm.stats.retries == 1


def test_hung_worker_times_out_retried_then_failed():
    jobs = [Job.kernel(ROCKET1, "EI", scale=0.05),
            Job.selftest("hang", sleep_s=30.0)]
    farm = RunFarm(workers=2, timeout_s=0.3, max_retries=1, backoff_s=0.01)
    results = farm.run(jobs)

    assert results[0].ok                        # sweep not sunk
    assert not results[1].ok
    assert "timed out" in results[1].error
    assert farm.stats.timeouts == 2             # first attempt + one retry
    assert farm.stats.retries == 1


def test_per_job_timeout_overrides_farm_timeout():
    jobs = [Job.selftest("hang", sleep_s=30.0, timeout_s=0.3),
            Job.selftest("ok")]
    farm = RunFarm(workers=2, timeout_s=None, max_retries=0, backoff_s=0.0)
    results = farm.run(jobs)
    assert not results[0].ok and "timed out" in results[0].error
    assert results[1].ok


def test_strict_run_jobs_raises_with_every_failure_listed():
    jobs = [Job.selftest("raise"), Job.selftest("ok")]
    with pytest.raises(RuntimeError, match="1/2.*raise@"):
        run_jobs(jobs, workers=1, max_retries=0, backoff_s=0.0, strict=True)


# -- progress events ---------------------------------------------------------


def test_event_stream_covers_lifecycle(tmp_path):
    events: list[FarmEvent] = []
    jobs = [Job.kernel(ROCKET1, "EI", scale=0.05), Job.selftest("raise")]
    cache = ResultCache(tmp_path)
    RunFarm(workers=1, cache=cache, max_retries=1, backoff_s=0.0,
            on_event=events.append).run(jobs)
    kinds = [(e.kind, e.index) for e in events]
    assert ("ok", 0) in kinds
    assert ("retry", 1) in kinds and ("failed", 1) in kinds
    assert all(e.total == 2 for e in events)

    events.clear()
    RunFarm(workers=1, cache=cache, on_event=events.append).run(jobs[:1])
    assert [(e.kind, e.index) for e in events] == [("cache-hit", 0)]
