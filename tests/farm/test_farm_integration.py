"""Integration: the farm wired through manager, sweeps, experiments, CLI."""

import json

import pytest

from repro.analysis import fig1
from repro.analysis.sweep import sweep_configs, sweep_knob
from repro.cli import main
from repro.firesim.manager import FireSimManager
from repro.soc import ROCKET1, ROCKET2
from repro.soc.fragments import WithL2Banks
from repro.workloads.microbench import run_kernel


def run_cli(capsys, *argv):
    rc = main(list(argv))
    return rc, capsys.readouterr().out


# -- manager batch entry point ----------------------------------------------


def test_run_batch_matches_singleton_runs():
    mgr = FireSimManager(ROCKET1)
    reps = mgr.run_batch(["EI", "MM"], scale=0.05, workers=2)
    assert [r.target_cycles for r in reps] == [
        run_kernel(ROCKET1, k, scale=0.05).cycles for k in ("EI", "MM")
    ]
    for rep in reps:
        assert rep.telemetry is not None
        assert rep.telemetry["config"] == "Rocket1"
        # rehydrated CPI stacks keep the exact-sum invariant
        assert sum(rep.cpi[0].buckets.values()) == rep.cpi[0].cycles
    assert mgr.farm_stats.simulated == 2


def test_run_batch_raises_on_persistent_failure():
    mgr = FireSimManager(ROCKET1)
    with pytest.raises(RuntimeError, match="batch job"):
        mgr.run_batch(["EI", "NoSuchKernel"], scale=0.05,
                      max_retries=0)


# -- analysis sweeps ---------------------------------------------------------


def test_sweep_configs_parallel_equals_serial(tmp_path):
    serial = sweep_configs([ROCKET1, ROCKET2], "EI", scale=0.05)
    farmed = sweep_configs([ROCKET1, ROCKET2], "EI", scale=0.05,
                           workers=2, cache=str(tmp_path))
    assert farmed.points == serial.points
    # second pass is cache-served and still identical
    again = sweep_configs([ROCKET1, ROCKET2], "EI", scale=0.05,
                          workers=2, cache=str(tmp_path))
    assert again.points == serial.points


def test_sweep_knob_labels_and_cache_distinct_variants(tmp_path):
    r = sweep_knob(ROCKET1, WithL2Banks, [1, 4], "EI", scale=0.05,
                   workers=2, cache=str(tmp_path))
    assert [p.label for p in r.points] == ["1", "4"]


# -- experiments -------------------------------------------------------------


def test_fig1_farmed_equals_serial():
    kernels = ["EI", "MM", "Cca", "DP1f"]   # 3 configs x 4 kernels >= 8 jobs
    serial = fig1(scale=0.05, kernels=kernels)
    farmed = fig1(scale=0.05, kernels=kernels, workers=4)
    assert farmed.series == serial.series
    assert farmed.labels == serial.labels
    assert farmed.meta["hw_seconds"] == serial.meta["hw_seconds"]


# -- CLI ---------------------------------------------------------------------


def test_cli_farm_basic(capsys):
    rc, out = run_cli(capsys, "farm", "--configs", "Rocket1",
                      "--kernels", "EI,MM", "--scale", "0.05",
                      "--workers", "2", "--no-cache", "--quiet")
    assert rc == 0
    assert "EI@Rocket1" in out and "MM@Rocket1" in out
    assert "farm: 2/2 ok" in out


def test_cli_farm_json_warm_cache(capsys, tmp_path):
    argv = ["farm", "--configs", "Rocket1,Rocket2", "--kernels", "EI,Cca",
            "--scale", "0.05", "--workers", "2",
            "--cache-dir", str(tmp_path), "--quiet", "--json"]
    rc, out = run_cli(capsys, *argv)
    assert rc == 0
    cold = json.loads(out)
    assert cold["stats"]["farm"]["simulated"] == 4

    rc, out = run_cli(capsys, *argv)
    assert rc == 0
    warm = json.loads(out)
    assert warm["stats"]["farm"]["cache_hits"] == 4
    assert warm["stats"]["farm"]["simulated"] == 0
    assert [j["cycles"] for j in warm["jobs"]] == \
        [j["cycles"] for j in cold["jobs"]]


def test_cli_farm_failure_exit_code(capsys):
    # an unknown kernel name fails the job (after retries) but the farm
    # still completes and reports, exiting nonzero
    rc, out = run_cli(capsys, "farm", "--configs", "Rocket1",
                      "--kernels", "EI,NoSuchKernel", "--scale", "0.05",
                      "--no-cache", "--retries", "0", "--quiet")
    assert rc == 1
    assert "FAILED" in out and "farm: 1/2 ok" in out
