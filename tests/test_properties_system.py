"""Property-based tests at the system level: MPI collective semantics,
interpreter-vs-oracle differential execution, and timing invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa import Interpreter, assemble
from repro.isa.trace import TraceBuilder
from repro.smpi import Comm, run_mpi
from repro.soc import ROCKET1, System
from repro.core.inorder import InOrderConfig, InOrderCore
from repro.mem.hierarchy import HierarchyConfig, TilePort, Uncore

FAST = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ------------------------------------------------------------ collectives

@given(
    nranks=st.integers(1, 4),
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=4,
                    max_size=4),
)
@FAST
def test_allreduce_equals_sum(nranks, values):
    def program(comm: Comm):
        return (yield from comm.allreduce(values[comm.rank]))

    results = run_mpi(System(ROCKET1), nranks, program)
    expected = sum(values[:nranks])
    for r in results:
        assert r.value == pytest.approx(expected, rel=1e-12, abs=1e-9)


@given(nranks=st.integers(2, 4), root=st.integers(0, 3),
       payload=st.integers(-1000, 1000))
@FAST
def test_bcast_any_root(nranks, root, payload):
    root %= nranks

    def program(comm: Comm):
        data = payload if comm.rank == root else None
        return (yield from comm.bcast(data, root=root))

    for r in run_mpi(System(ROCKET1), nranks, program):
        assert r.value == payload


@given(nranks=st.integers(2, 4))
@FAST
def test_alltoall_is_transpose(nranks):
    def program(comm: Comm):
        vals = [(comm.rank, j) for j in range(comm.size)]
        return (yield from comm.alltoall(vals))

    results = run_mpi(System(ROCKET1), nranks, program)
    for j, r in enumerate(results):
        assert r.value == [(i, j) for i in range(nranks)]


@given(nranks=st.integers(1, 4),
       sizes=st.lists(st.integers(0, 2000), min_size=4, max_size=4))
@FAST
def test_allgather_preserves_payloads(nranks, sizes):
    def program(comm: Comm):
        data = np.full(sizes[comm.rank], float(comm.rank))
        return (yield from comm.allgather(data))

    results = run_mpi(System(ROCKET1), nranks, program)
    for r in results:
        assert len(r.value) == nranks
        for i, arr in enumerate(r.value):
            assert len(arr) == sizes[i]
            assert np.all(arr == i)


@given(nranks=st.integers(1, 4), n=st.integers(1, 500))
@FAST
def test_rank_clocks_never_negative_and_instructions_counted(nranks, n):
    b = TraceBuilder()
    for i in range(n):
        b.alu(5 + i % 8, 20, 21)
    t = b.build()

    def program(comm: Comm):
        yield from comm.compute(t)
        yield from comm.barrier()
        return None

    results = run_mpi(System(ROCKET1), nranks, program)
    for r in results:
        assert r.cycles >= 0
        assert r.instructions == n
        assert r.compute_cycles >= 0 and r.comm_cycles >= 0


# ------------------------------------------- interpreter differential

_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "mul"]


@given(
    prog=st.lists(
        st.tuples(
            st.sampled_from(_OPS),
            st.integers(1, 7),   # rd in a small window
            st.integers(1, 7),
            st.integers(1, 7),
        ),
        min_size=1, max_size=40,
    ),
    init=st.lists(st.integers(-100, 100), min_size=7, max_size=7),
)
@FAST
def test_interpreter_matches_python_oracle(prog, init):
    """Random straight-line integer programs: the RV64 interpreter must
    agree with a direct Python evaluation with 64-bit wrapping."""
    mask = (1 << 64) - 1
    lines = [f"li x{i + 1}, {v}" for i, v in enumerate(init)]
    regs = [0] * 8
    for i, v in enumerate(init):
        regs[i + 1] = v & mask
    for op, rd, rs1, rs2 in prog:
        lines.append(f"{op} x{rd}, x{rs1}, x{rs2}")
        a, b = regs[rs1], regs[rs2]
        if op == "add":
            r = a + b
        elif op == "sub":
            r = a - b
        elif op == "and":
            r = a & b
        elif op == "or":
            r = a | b
        elif op == "xor":
            r = a ^ b
        elif op == "sll":
            r = a << (b & 63)
        elif op == "srl":
            r = a >> (b & 63)
        else:  # mul
            r = a * b
        regs[rd] = r & mask
    interp = Interpreter(assemble("\n".join(lines)))
    interp.run()
    for i in range(1, 8):
        got = interp.regs[i]
        assert got == regs[i], f"x{i}: {got:#x} != {regs[i]:#x}"


# ------------------------------------------------------------ core timing

@given(
    ops=st.lists(st.sampled_from(["alu", "load", "store"]), min_size=1,
                 max_size=300),
    width=st.integers(1, 2),
)
@FAST
def test_inorder_cycle_lower_bound(ops, width):
    """Cycles can never beat the issue width, and every run on identical
    fresh state is deterministic."""
    b = TraceBuilder()
    for i, o in enumerate(ops):
        if o == "alu":
            b.alu(5 + i % 8, 20, 21)
        elif o == "load":
            b.load(5 + i % 8, 0x8000 + (i % 64) * 8)
        else:
            b.store(5, 0x9000 + (i % 64) * 8)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(len(t), dtype=np.uint64) % 64) * 4

    def run():
        cfg = HierarchyConfig(core_ghz=1.6)
        port = TilePort(Uncore(cfg))
        core = InOrderCore(InOrderConfig(issue_width=width), port)
        return core.run(t).cycles

    c1, c2 = run(), run()
    assert c1 == c2
    assert c1 >= len(ops) / width


@given(
    ops=st.lists(st.sampled_from(["alu", "mul", "fp"]), min_size=10,
                 max_size=250),
    decode=st.integers(1, 4),
)
@FAST
def test_ooo_bandwidth_lower_bounds(ops, decode):
    """Commit can never beat decode width or issue-port throughput."""
    from repro.core.ooo import OoOConfig, OoOCore
    from repro.isa.opcodes import OpClass

    b = TraceBuilder()
    for i, o in enumerate(ops):
        if o == "alu":
            b.alu(5 + i % 8, 20, 21)
        elif o == "mul":
            b.mul(5 + i % 8, 20, 21)
        else:
            b.fp(OpClass.FP_FMA, 40 + i % 8, 50, 51)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(len(t), dtype=np.uint64) % 64) * 4

    cfg = OoOConfig(fetch_width=8, decode_width=decode, rob_size=96,
                    int_iq=32, int_issue=2, mem_iq=16, fp_iq=24, fp_issue=1,
                    ldq=16, stq=16)
    hcfg = HierarchyConfig(core_ghz=1.6)
    core = OoOCore(cfg, TilePort(Uncore(hcfg)))
    r = core.run(t)
    n_fp = sum(1 for o in ops if o == "fp")
    n_int = len(ops) - n_fp
    assert r.cycles >= len(ops) / decode - 2
    assert r.cycles >= n_fp / cfg.fp_issue - 2
    assert r.cycles >= n_int / cfg.int_issue - 2


@given(rob=st.sampled_from([8, 32, 96]))
@FAST
def test_ooo_more_rob_never_slower_on_miss_stream(rob):
    """A larger ROB cannot make an independent miss stream slower."""
    from repro.core.ooo import OoOConfig, OoOCore

    b = TraceBuilder()
    for i in range(400):
        b.load(5 + i % 8, 0x800000 + i * 4096)
    t = b.build()
    t.pc[:] = 0x1_0000 + (np.arange(len(t), dtype=np.uint64) % 64) * 4

    def cycles(robsize):
        cfg = OoOConfig(fetch_width=8, decode_width=3, rob_size=robsize,
                        int_iq=32, mem_iq=16, fp_iq=24, ldq=min(robsize, 24),
                        stq=8)
        return OoOCore(cfg, TilePort(Uncore(HierarchyConfig(core_ghz=1.6)))
                       ).run(t).cycles

    assert cycles(96) <= cycles(rob) + 2
